package experiments

import (
	"fmt"

	"chopper/internal/config"
	"chopper/internal/core"
	"chopper/internal/dag"
	"chopper/internal/experiments/driver"
	"chopper/internal/rdd"
	"chopper/internal/workloads"
)

// ProfilePlan describes CHOPPER's lightweight test runs for one workload:
// a default run (the normalization reference) plus sweeps over partition
// counts, schemes and sampled input sizes (paper Section III-B).
type ProfilePlan struct {
	SizeFractions []float64
	Partitions    []int
	Schemes       []rdd.SchemeName
}

// DefaultProfilePlan returns the standard test-run grid.
func DefaultProfilePlan() ProfilePlan {
	return ProfilePlan{
		SizeFractions: []float64{0.4, 0.7, 1.0},
		Partitions:    []int{150, 300, 450, 600, 900},
		Schemes:       []rdd.SchemeName{rdd.SchemeHash, rdd.SchemeRange},
	}
}

// RunCount reports how many test runs the plan performs (plus one default).
func (p ProfilePlan) RunCount() int {
	return 1 + len(p.SizeFractions)*len(p.Partitions)*len(p.Schemes)
}

// Profile executes the plan for a workload, filling db with observations.
// The test runs are independent (each builds a fresh stack) and execute on
// the driver worker pool; harvesting mutates the shared DB, whose float
// accumulation is order-sensitive, so it happens after the pool drains,
// sequentially in grid order — exactly the order the sequential loop used.
func Profile(db *core.DB, w workloads.Workload, targetBytes int64, plan ProfilePlan, opt Options) error {
	opt = opt.withDefaults()

	type profileRun struct {
		bytes     int64
		opt       Options
		isDefault bool
		label     string
	}
	// Default run first: the vanilla configuration is the cost reference.
	defOpt := opt
	defOpt.Configurator = nil
	defOpt.CoPartition = false
	runs := []profileRun{{bytes: targetBytes, opt: defOpt, isDefault: true, label: "default profile run"}}
	for _, frac := range plan.SizeFractions {
		bytes := int64(frac * float64(targetBytes))
		for _, scheme := range plan.Schemes {
			for _, p := range plan.Partitions {
				runOpt := opt
				runOpt.CoPartition = false
				runOpt.Configurator = &core.ForceAll{Spec: dag.SchemeSpec{Scheme: scheme, NumPartitions: p}}
				runs = append(runs, profileRun{
					bytes: bytes,
					opt:   runOpt,
					label: fmt.Sprintf("profile run (%s,%d,%.1f)", scheme, p, frac),
				})
			}
		}
	}

	rts, err := driver.Map(len(runs), func(i int) (*Runtime, error) {
		rt, _, err := RunWorkload(w, runs[i].bytes, runs[i].opt)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", runs[i].label, err)
		}
		return rt, nil
	})
	if err != nil {
		return err
	}
	for i, rt := range rts {
		rt.Rec.Harvest(db, w.Name(), float64(runs[i].bytes), rt.Col, runs[i].isDefault)
	}
	return nil
}

// TrainedChopper is a ready-to-run CHOPPER for one workload.
type TrainedChopper struct {
	DB     *core.DB
	Opt    *core.Optimizer
	Config *config.File
}

// Train profiles the workload and generates its configuration file —
// the full CHOPPER pipeline up to (but not including) the optimized run.
// Model training happens offline, outside any measured run.
func Train(w workloads.Workload, targetBytes int64, plan ProfilePlan, opt Options) (*TrainedChopper, error) {
	db := core.NewDB()
	if err := Profile(db, w, targetBytes, plan, opt); err != nil {
		return nil, err
	}
	optimizer := core.NewOptimizer(db)
	optimizer.DefaultParallelism = opt.withDefaults().DefaultParallelism
	if opt.OnSchemeViolations != nil {
		optimizer.OnViolation = func(workload string, vs []core.SchemeViolation) error {
			opt.OnSchemeViolations(workload, vs)
			return nil
		}
	}
	cf, err := optimizer.GenerateConfig(w.Name(), float64(targetBytes))
	if err != nil {
		return nil, fmt.Errorf("experiments: generate config: %w", err)
	}
	return &TrainedChopper{DB: db, Opt: optimizer, Config: cf}, nil
}

// Compared holds a vanilla-vs-CHOPPER pair of runs on one workload.
type Compared struct {
	Workload string
	Spark    *Runtime
	Chopper  *Runtime
	Trained  *TrainedChopper
}

// Improvement reports the relative execution-time gain of CHOPPER.
func (c Compared) Improvement() float64 {
	s, ch := c.Spark.Col.TotalTime(), c.Chopper.Col.TotalTime()
	if s <= 0 {
		return 0
	}
	return (s - ch) / s * 100
}

// Compare trains CHOPPER for a workload and executes both systems at the
// given input size. The chopper run uses the generated configuration plus
// the co-partition-aware scheduler.
func Compare(w workloads.Workload, inputBytes int64, plan ProfilePlan, opt Options) (Compared, error) {
	opt = opt.withDefaults()
	trained, err := Train(w, inputBytes, plan, opt)
	if err != nil {
		return Compared{}, err
	}

	sparkOpt := opt
	sparkOpt.Mode = "spark"
	sparkOpt.CoPartition = false
	sparkOpt.Configurator = nil
	spark, _, err := RunWorkload(w, inputBytes, sparkOpt)
	if err != nil {
		return Compared{}, err
	}

	chopperOpt := opt
	chopperOpt.Mode = "chopper"
	chopperOpt.CoPartition = true
	chopperOpt.Configurator = &config.Static{F: trained.Config}
	chopper, _, err := RunWorkload(w, inputBytes, chopperOpt)
	if err != nil {
		return Compared{}, err
	}
	return Compared{Workload: w.Name(), Spark: spark, Chopper: chopper, Trained: trained}, nil
}
