package driver

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapWithPreservesIndexOrder(t *testing.T) {
	for _, parallel := range []int{1, 2, 8, 64} {
		got, err := MapWith(parallel, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallel=%d: result[%d] = %d, want %d", parallel, i, v, i*i)
			}
		}
	}
}

func TestMapWithReturnsLowestIndexError(t *testing.T) {
	wantErr := errors.New("boom-3")
	for _, parallel := range []int{2, 8} {
		_, err := MapWith(parallel, 32, func(i int) (int, error) {
			if i == 3 {
				return 0, wantErr
			}
			if i == 20 {
				return 0, errors.New("boom-20")
			}
			return i, nil
		})
		if !errors.Is(err, wantErr) {
			t.Fatalf("parallel=%d: err = %v, want lowest-index error %v", parallel, err, wantErr)
		}
	}
}

func TestMapWithBoundsParallelism(t *testing.T) {
	const parallel = 4
	var inFlight, peak atomic.Int64
	_, err := MapWith(parallel, 64, func(i int) (int, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		defer inFlight.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > parallel {
		t.Fatalf("peak in-flight jobs = %d, want <= %d", p, parallel)
	}
}

func TestSetParallelismDefaults(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d, want 3", got)
	}
	SetParallelism(0)
	if got := Parallelism(); got < 1 {
		t.Fatalf("Parallelism() = %d, want >= 1 (GOMAXPROCS default)", got)
	}
}

func TestRunPropagatesError(t *testing.T) {
	err := Run(10, func(i int) error {
		if i == 7 {
			return fmt.Errorf("job %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "job 7 failed" {
		t.Fatalf("err = %v", err)
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, func(i int) (int, error) { return 0, errors.New("never called") })
	if err != nil || got != nil {
		t.Fatalf("Map(0) = %v, %v", got, err)
	}
}
