// Package driver is the experiment harness's worker pool: it executes the
// independent runs of a sweep (motivation partition counts, profiling-plan
// grid points, evaluation workloads, ablation rows) concurrently with
// bounded parallelism while keeping every observable result byte-identical
// to a sequential execution.
//
// The determinism argument is structural, not accidental:
//
//   - every job builds its own full stack (context, engine, scheduler,
//     collector) — no state is shared between sweep points;
//   - each job's simulated clock depends only on its own inputs, so running
//     jobs concurrently cannot perturb any job's trace;
//   - results land in an index-addressed slice, never in completion order,
//     and error selection is by lowest index, so the caller sees exactly
//     what the sequential loop would have returned;
//   - cross-run mutable state (the workload DB, printed tables) is written
//     by the caller AFTER the pool drains, in index order.
//
// The chopperlint sharedescape/globalrand gates and the race-detector run in
// ci.sh keep this honest as the harness grows.
package driver

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultParallel is the process-wide parallelism for Map/Run when the
// caller does not pass an explicit width. Zero means GOMAXPROCS.
var defaultParallel atomic.Int64

// SetParallelism sets the process-wide default worker count used by Map and
// Run (the -parallel flag of cmd/experiments and cmd/chopperbench). n <= 0
// resets to the GOMAXPROCS default.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	defaultParallel.Store(int64(n))
}

// Parallelism reports the effective default worker count.
func Parallelism() int {
	if n := int(defaultParallel.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(0..n-1) on the default worker pool width and returns the
// results in index order. See MapWith.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapWith[T](Parallelism(), n, fn)
}

// MapWith runs fn(0..n-1) with at most parallel concurrent invocations and
// returns one result per index, in index order. If any invocations fail, the
// error of the lowest failing index is returned — the same error a
// sequential loop would surface — together with the partial results.
// parallel <= 1 degenerates to a plain sequential loop on the caller's
// goroutine (no spawns), which is the reference behavior the parallel path
// must reproduce bit for bit.
func MapWith[T any](parallel, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	errs := make([]error, n)
	if parallel <= 1 {
		for i := 0; i < n; i++ {
			results[i], errs[i] = fn(i)
			if errs[i] != nil {
				return results, errs[i]
			}
		}
		return results, nil
	}
	if parallel > n {
		parallel = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func(results []T, errs []error) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = fn(i)
			}
		}(results, errs)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Run is Map for jobs without a result value.
func Run(n int, fn func(i int) error) error {
	_, err := Map[struct{}](n, func(i int) (struct{}, error) { return struct{}{}, fn(i) })
	return err
}
