package experiments

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"chopper/internal/metrics"
	"chopper/internal/rdd"
	"chopper/internal/workloads"
)

func TestTableRendering(t *testing.T) {
	tbl := Table{
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	out := tbl.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "333") {
		t.Fatalf("table rendering wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestSeriesSetTable(t *testing.T) {
	ss := SeriesSet{Title: "s", Step: 10, Labels: []string{"x"}}
	ss.Series = append(ss.Series, seriesOf(1, 2, 3))
	tbl := ss.Table()
	if len(tbl.Rows) != 3 || tbl.Rows[2][0] != "20" {
		t.Fatalf("series table wrong: %+v", tbl.Rows)
	}
}

func TestTableIMatchesPaper(t *testing.T) {
	tbl := TableI()
	if len(tbl.Rows) != 3 {
		t.Fatalf("Table I should have 3 workloads")
	}
	joined := tbl.String()
	for _, want := range []string{"21.8", "27.6", "34.5"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("Table I missing %s:\n%s", want, joined)
		}
	}
}

func TestProfilePlanRunCount(t *testing.T) {
	p := DefaultProfilePlan()
	if p.RunCount() != 1+3*5*2 {
		t.Fatalf("default plan run count = %d", p.RunCount())
	}
}

func TestMotivationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	m, err := RunMotivation(true, []int{100, 300, 500})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 3 shape: P=100 must be the worst stage-0 configuration.
	d100 := stageDur(m.Runs[0].Col, 0)
	d300 := stageDur(m.Runs[1].Col, 0)
	d500 := stageDur(m.Runs[2].Col, 0)
	if d100 <= d300 || d100 <= d500 {
		t.Fatalf("stage 0 should be worst at P=100: %v %v %v", d100, d300, d500)
	}
	// Fig. 4 shape: total iteration shuffle volume grows with P.
	lo, hi := m.ShuffleGrowth()
	if hi <= lo {
		t.Fatalf("shuffle data should grow with partitions: %d vs %d", lo, hi)
	}
	// Tables render for all three figures.
	for _, tbl := range []Table{m.Fig2(), m.Fig3(), m.Fig4()} {
		if len(tbl.Rows) == 0 {
			t.Fatalf("empty table: %s", tbl.Title)
		}
	}
	if len(m.Fig2().Rows) != 19 {
		t.Fatalf("Fig. 2 covers stages 1-19, got %d rows", len(m.Fig2().Rows))
	}
	if len(m.Fig4().Rows) != 6 {
		t.Fatalf("Fig. 4 covers stages 12-17, got %d rows", len(m.Fig4().Rows))
	}
}

func TestEvaluationReproducesPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ev, err := RunEvaluation(true)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 7: CHOPPER wins on every workload.
	for _, c := range ev.Results {
		if c.Improvement() <= 0 {
			t.Fatalf("%s: CHOPPER should beat vanilla, improvement %.1f%%", c.Workload, c.Improvement())
		}
	}
	// Table II: stage 0 faster under CHOPPER.
	s0c := stageDur(ev.KMeans.Chopper.Col, 0)
	s0s := stageDur(ev.KMeans.Spark.Col, 0)
	if s0c >= s0s {
		t.Fatalf("Table II: chopper stage 0 (%.1f) should beat spark (%.1f)", s0c, s0s)
	}
	// Table III: spark fixed at 300 everywhere; chopper varies per stage
	// and keeps iterative stages consistent.
	spark := ev.KMeans.Spark.Col.Stages()
	for _, st := range spark {
		if st.NumTasks != 300 {
			t.Fatalf("vanilla should run 300 partitions everywhere, stage %d has %d", st.ID, st.NumTasks)
		}
	}
	ch := ev.KMeans.Chopper.Col.Stages()
	varied := false
	for _, st := range ch {
		if st.NumTasks != 300 {
			varied = true
		}
	}
	if !varied {
		t.Fatalf("chopper should deviate from the default parallelism")
	}
	if ch[13].NumTasks != ch[15].NumTasks || ch[13].NumTasks != ch[17].NumTasks {
		t.Fatalf("iterative reduce stages should share a partition count")
	}
	// Fig. 9: SQL shuffle volume per stage no worse under CHOPPER overall.
	chS := sqlPaperStages(ev.SQL.Chopper.Col)
	spS := sqlPaperStages(ev.SQL.Spark.Col)
	var chTot, spTot int64
	for i := 0; i < 4; i++ {
		chTot += chS[i].shuffle
		spTot += spS[i].shuffle
	}
	if chTot > spTot*11/10 {
		t.Fatalf("Fig. 9: chopper shuffle (%d) should not exceed spark (%d) by >10%%", chTot, spTot)
	}
	// Fig. 10: the join job (paper stage 4) is faster under CHOPPER.
	if chS[4].duration >= spS[4].duration {
		t.Fatalf("Fig. 10: chopper join stage (%.1f) should beat spark (%.1f)", chS[4].duration, spS[4].duration)
	}
	// Figs. 11-14 render non-empty series for all six runs.
	for _, ss := range []SeriesSet{ev.Fig11(), ev.Fig12(), ev.Fig13(), ev.Fig14()} {
		if len(ss.Series) != 6 {
			t.Fatalf("%s: want 6 series, got %d", ss.Title, len(ss.Series))
		}
		for i, s := range ss.Series {
			if len(s.Values) == 0 {
				t.Fatalf("%s: series %d empty", ss.Title, i)
			}
		}
	}
	// CPU utilization stays within [0, 100].
	for _, s := range ev.Fig11().Series {
		if s.Max() > 100+1e-9 {
			t.Fatalf("CPU series exceeds 100%%: %v", s.Max())
		}
	}
	// Fig. 6: the generated configuration renders and parses.
	if !strings.Contains(ev.Fig6(), "stage ") {
		t.Fatalf("Fig. 6 config missing stage entries:\n%s", ev.Fig6())
	}
	// Tables render.
	for _, tbl := range []Table{ev.Fig7(), ev.Fig8(), ev.TableII(), ev.TableIII(), ev.Fig9(), ev.Fig10()} {
		if len(tbl.Rows) == 0 {
			t.Fatalf("empty table: %s", tbl.Title)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := RunAblations(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 6 {
		t.Fatalf("want 6 ablation tables, got %d", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Fatalf("empty ablation: %s", tbl.Title)
		}
	}
	// The gamma ablation must show the gate: some gamma inserts, some not.
	gamma := tables[1]
	sawTrue, sawFalse := false, false
	for _, row := range gamma.Rows {
		if len(row) > 1 && row[1] == "true" {
			sawTrue = true
		}
		if len(row) > 1 && row[1] == "false" {
			sawFalse = true
		}
	}
	if !sawTrue || !sawFalse {
		t.Fatalf("gamma gate should flip across the sweep:\n%s", gamma)
	}
}

func TestRunWorkloadErrorPath(t *testing.T) {
	bad := badWorkload{}
	if _, _, err := RunWorkload(bad, 100, Options{}); err == nil {
		t.Fatalf("expected error from failing workload")
	}
}

type badWorkload struct{}

func (badWorkload) Name() string             { return "bad" }
func (badWorkload) DefaultInputBytes() int64 { return 1 }
func (badWorkload) Run(_ *rdd.Context, _ int64) (workloads.Result, error) {
	return workloads.Result{}, errors.New("boom")
}

func seriesOf(vals ...float64) (s metrics.Series) {
	s.Step = 10
	s.Values = vals
	return
}

func TestExtremePartitions(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	m, err := RunMotivation(true, []int{200, 500})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := m.ExtremePartitions(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("want rows for 200, 500, 2000: %+v", tbl.Rows)
	}
	// The 2000-partition run must shuffle far more than the 200-partition
	// run (the paper reports ~10x at stage 17) and take longer overall.
	parse := func(s string) float64 {
		var v float64
		_, err := fmt.Sscanf(s, "%f", &v)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	t200, sh200 := parse(tbl.Rows[0][1]), parse(tbl.Rows[0][2])
	t2000, sh2000 := parse(tbl.Rows[2][1]), parse(tbl.Rows[2][2])
	if sh2000 < 4*sh200 {
		t.Fatalf("2000 partitions should shuffle much more: %v vs %v KB", sh2000, sh200)
	}
	if t2000 <= t200 {
		t.Fatalf("2000 partitions should be slower: %v vs %v min", t2000, t200)
	}
}
