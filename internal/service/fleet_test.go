package service

import (
	"bytes"
	"context"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"chopper/api"
	"chopper/client"
)

// waitSynced polls a replica's /healthz until it reports a fully caught-up
// stream (or the deadline passes). The synced/lag gauges describe the
// replica's last completed poll cycle — stale by up to one poll interval if
// the primary was being written during the cycle — so the caller also
// passes the primary's client and waitSynced requires the replica's own
// journal to hold at least as many records as the (now quiescent) primary's.
func waitSynced(t *testing.T, cl, primary *client.Client) *api.Health {
	t.Helper()
	ph, err := primary.Health(context.Background())
	if err != nil {
		t.Fatalf("primary health: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		h, err := cl.Health(context.Background())
		if err == nil && h.ReplicationSynced && h.ReplicationLagBytes == 0 &&
			h.Status == "ok" && h.JournalRecords >= ph.JournalRecords {
			return h
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never synced; last health: %+v err=%v (primary has %d records)",
				h, err, ph.JournalRecords)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestReplicaFollowsPrimary is the in-process fleet integration test: a
// primary daemon and a replica daemon wired over real HTTP, with the
// replica read-only, catching up via journal shipping, and answering
// recommendations byte-identical to the primary's.
func TestReplicaFollowsPrimary(t *testing.T) {
	dir := t.TempDir()
	_, pcl, _ := startTestServer(t, Config{
		StorePath: filepath.Join(dir, "p.db"),
		Role:      "primary",
		ShardID:   0, ShardCount: 1,
	})
	_, rcl, _ := startTestServer(t, Config{
		StorePath:  filepath.Join(dir, "r.db"),
		Role:       "replica",
		PrimaryURL: pcl.Base,
		ReplPoll:   20 * time.Millisecond,
		ShardID:    0, ShardCount: 1,
	})
	ctx := context.Background()

	// The replica refuses writes with 403, pointing at the primary.
	_, err := rcl.Train(ctx, api.TrainRequest{Workload: "kmeans"})
	if got := apiStatus(t, err); got != http.StatusForbidden {
		t.Fatalf("train on replica: status %d, want 403", got)
	}
	_, err = rcl.Submit(ctx, api.SubmitRequest{Workload: "kmeans"})
	if got := apiStatus(t, err); got != http.StatusForbidden {
		t.Fatalf("submit on replica: status %d, want 403", got)
	}

	smallTrain(t, pcl, "kmeans")
	h := waitSynced(t, rcl, pcl)
	if h.Role != "replica" || h.ReplicationPos == 0 || h.ReplicationEpoch == 0 {
		t.Fatalf("replica health missing replication state: %+v", h)
	}
	ph, err := pcl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Role != "primary" {
		t.Fatalf("primary health role = %q", ph.Role)
	}

	// The answer a client gets must not depend on which daemon served it.
	praw, err := pcl.RecommendRaw(ctx, "kmeans", 0)
	if err != nil {
		t.Fatal(err)
	}
	rraw, err := rcl.RecommendRaw(ctx, "kmeans", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(praw, rraw) {
		t.Fatalf("replica recommendation differs from primary:\nprimary: %s\nreplica: %s", praw, rraw)
	}

	// The replication lag gauge is exported on the replica.
	metrics, err := rcl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains([]byte(metrics), []byte("chopperd_replication_lag_bytes")) {
		t.Fatal("replica /metrics missing chopperd_replication_lag_bytes")
	}
}

// TestReplicaConfigValidation pins the role plumbing's input checking.
func TestReplicaConfigValidation(t *testing.T) {
	if _, err := New(Config{Role: "replica"}); err == nil {
		t.Fatal("replica without store/primary must be rejected")
	}
	if _, err := New(Config{Role: "observer"}); err == nil {
		t.Fatal("unknown role must be rejected")
	}
}
