package service

import (
	"context"
	"net/http"

	"chopper"
	"chopper/api"
	"chopper/internal/core"
)

// buildApp resolves a built-in workload and applies the request's shrink and
// input-size overrides.
func (s *Server) buildApp(workload string, inputBytes int64, shrink int) (*chopper.BuiltinApp, int64, error) {
	app, err := chopper.Builtin(workload)
	if err != nil {
		return nil, 0, httpErrf(http.StatusNotFound, "service: unknown workload %q", workload)
	}
	if shrink <= 0 {
		shrink = s.cfg.Shrink
	}
	app.Shrink(shrink)
	bytes := app.InputBytes()
	if inputBytes > 0 {
		bytes = inputBytes
		app.SetInputBytes(bytes)
	}
	return app, bytes, nil
}

// tunedConfig generates the CHOPPER configuration for a workload from a
// copy-on-read snapshot of the shared DB, so the (potentially long)
// optimizer pass never holds the DB lock.
func (s *Server) tunedConfig(workload string, inputBytes int64) (*chopper.ConfigFile, error) {
	o := core.NewOptimizer(s.db.CloneWorkload(workload))
	cf, err := o.GenerateConfig(workload, float64(inputBytes))
	if err != nil {
		return nil, httpErrf(http.StatusConflict, "service: workload %q not trained: %v", workload, err)
	}
	return cf, nil
}

// schemeEntries converts a generated configuration to wire form.
func schemeEntries(cf *chopper.ConfigFile) []api.SchemeEntry {
	out := make([]api.SchemeEntry, 0, len(cf.Entries))
	for _, e := range cf.Entries {
		out = append(out, api.SchemeEntry{
			Signature:         e.Signature,
			Scheme:            string(e.Scheme),
			NumPartitions:     e.NumPartitions,
			InsertRepartition: e.InsertRepartition,
		})
	}
	return out
}

// runSubmit executes one workload job on a worker: acquire a pooled
// session (tuned or vanilla), run the pipeline, and — unless the request
// opts out — fold the observed stage statistics back into the shared DB
// (which also journals them through the store observer).
func (s *Server) runSubmit(ctx context.Context, req api.SubmitRequest) (*api.SubmitResponse, error) {
	app, bytes, err := s.buildApp(req.Workload, req.InputBytes, req.Shrink)
	if err != nil {
		return nil, err
	}
	resp := &api.SubmitResponse{Workload: req.Workload, Mode: "spark", InputBytes: bytes}
	var extra []chopper.Option
	if req.Tuned {
		cf, err := s.tunedConfig(req.Workload, bytes)
		if err != nil {
			return nil, err
		}
		extra = append(extra, chopper.WithTuning(cf))
		resp.Mode = "chopper"
		resp.Schemes = schemeEntries(cf)
	}
	if err := ctx.Err(); err != nil {
		return nil, httpErrf(http.StatusGatewayTimeout, "service: job canceled before run: %v", err)
	}
	sess := s.sessions.Acquire(extra...)
	defer s.sessions.Release(sess)
	if err := app.Run(sess, bytes); err != nil {
		return nil, httpErrf(http.StatusInternalServerError, "service: %s run failed: %v", req.Workload, err)
	}
	if !req.NoRecord {
		(&chopper.Tuner{DB: s.db}).Observe(sess, app, bytes)
		resp.Recorded = true
	}
	resp.SimSeconds = sess.Elapsed()
	resp.Checksum = app.LastResult["checksum"]
	for _, st := range sess.Stages() {
		resp.Stages = append(resp.Stages, api.StageResult{
			ID:           st.ID,
			Name:         st.Name,
			Signature:    st.Signature,
			Partitioner:  st.Partitioner,
			Tasks:        st.NumTasks,
			InputBytes:   st.InputBytes,
			ShuffleRead:  st.ShuffleRead,
			ShuffleWrite: st.ShuffleWrite,
			Seconds:      st.Duration(),
		})
	}
	return resp, nil
}

// runTrain executes incremental profiling on a worker: the trial grid runs
// under the request context (cancellation stops between trials, keeping
// completed runs), and every run folds into the shared DB.
func (s *Server) runTrain(ctx context.Context, req api.TrainRequest) (*api.TrainResponse, error) {
	app, _, err := s.buildApp(req.Workload, req.InputBytes, req.Shrink)
	if err != nil {
		return nil, err
	}
	plan := chopper.DefaultTrialPlan()
	if len(req.SizeFractions) > 0 {
		plan.SizeFractions = req.SizeFractions
	}
	if len(req.Partitions) > 0 {
		plan.Partitions = req.Partitions
	}
	if req.Range != nil {
		plan.Range = *req.Range
	}
	tuner := &chopper.Tuner{DB: s.db, Plan: plan, SessionOptions: s.cfg.SessionOptions}
	before := s.db.RunCount(req.Workload)
	if err := tuner.ProfileContext(ctx, app); err != nil {
		return nil, httpErrf(http.StatusGatewayTimeout, "service: training %s stopped: %v", req.Workload, err)
	}
	return &api.TrainResponse{
		Workload:     req.Workload,
		Runs:         s.db.RunCount(req.Workload) - before,
		TotalRuns:    s.db.RunCount(req.Workload),
		TotalSamples: s.db.SampleCount(req.Workload),
	}, nil
}

// recommend answers the read-only tuning question from a DB snapshot.
func (s *Server) recommend(workload string, inputBytes int64) (*api.RecommendResponse, error) {
	cf, err := s.tunedConfig(workload, inputBytes)
	if err != nil {
		return nil, err
	}
	return &api.RecommendResponse{
		Workload:   workload,
		InputBytes: inputBytes,
		Schemes:    schemeEntries(cf),
		Runs:       s.db.RunCount(workload),
		Samples:    s.db.SampleCount(workload),
	}, nil
}

// explain renders the optimizer's per-stage reasoning from a DB snapshot.
func (s *Server) explain(workload string, inputBytes int64) (string, error) {
	o := core.NewOptimizer(s.db.CloneWorkload(workload))
	ex, err := o.Explain(workload, float64(inputBytes))
	if err != nil {
		return "", httpErrf(http.StatusConflict, "service: workload %q not trained: %v", workload, err)
	}
	return ex.String(), nil
}
