package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Admission-control errors, mapped to HTTP statuses by the handlers.
var (
	// errQueueFull means the bounded job queue is at capacity (429).
	errQueueFull = errors.New("service: job queue full")
	// errDraining means the server is shutting down (503).
	errDraining = errors.New("service: draining")
)

// job is one unit of work admitted to the pool. The worker either executes
// run or — when the request context is already dead from queue-wait — skips
// it; either way exactly one result lands in done (buffered, so workers
// never block on an abandoned handler).
type job struct {
	ctx  context.Context
	run  func(ctx context.Context) (any, error)
	done chan jobResult
}

// jobResult is what a worker hands back to the waiting handler.
type jobResult struct {
	v   any
	err error
}

// newJob wraps fn for admission.
func newJob(ctx context.Context, fn func(ctx context.Context) (any, error)) *job {
	return &job{ctx: ctx, run: fn, done: make(chan jobResult, 1)}
}

// workPool is chopperd's bounded execution layer: a fixed worker count
// draining a bounded queue. Admission is non-blocking — a full queue is the
// client's problem (429 + Retry-After), never a goroutine pile-up in the
// server. The mutex serializes admission against close, so a submit can
// never race a send onto a closed queue.
type workPool struct {
	workers int
	active  atomic.Int64
	mu      sync.Mutex
	queue   chan *job
	closed  bool
}

// newWorkPool sizes the pool; run must be called (once) to start it.
func newWorkPool(workers, queueDepth int) *workPool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	return &workPool{workers: workers, queue: make(chan *job, queueDepth)}
}

// submit admits a job or reports errQueueFull / errDraining.
func (p *workPool) submit(j *job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errDraining
	}
	select {
	case p.queue <- j:
		return nil
	default:
		return errQueueFull
	}
}

// depth reports the currently queued job count.
func (p *workPool) depth() int { return len(p.queue) }

// inflight reports the jobs currently executing on a worker.
func (p *workPool) inflight() int { return int(p.active.Load()) }

// cap reports the queue capacity.
func (p *workPool) cap() int { return cap(p.queue) }

// close stops admission and lets run's workers drain what is queued.
// Idempotent; safe to call concurrently with submit.
func (p *workPool) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	close(p.queue)
}

// run starts the workers and blocks until close has been called and every
// queued job has finished — the pool's drain barrier. Each worker signals a
// WaitGroup the function waits on, so no worker goroutine can outlive it.
func (p *workPool) run() {
	var wg sync.WaitGroup
	for i := 0; i < p.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range p.queue {
				p.exec(j)
			}
		}()
	}
	wg.Wait()
}

// exec runs one job on the calling worker. A job whose context died while
// queued is skipped — its handler is gone, and running it would burn a
// worker on an unobservable result.
func (p *workPool) exec(j *job) {
	if err := j.ctx.Err(); err != nil {
		j.done <- jobResult{err: fmt.Errorf("service: canceled while queued: %w", err)}
		return
	}
	p.active.Add(1)
	defer p.active.Add(-1)
	v, err := j.run(j.ctx)
	j.done <- jobResult{v: v, err: err}
}
