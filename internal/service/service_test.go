package service

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"chopper/api"
	"chopper/client"
	"chopper/internal/core"
)

// startTestServer runs a daemon on an ephemeral port and returns a client
// plus a stop function that drains it and requires a clean exit.
func startTestServer(t *testing.T, cfg Config) (*Server, *client.Client, func()) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	cl := client.New("http://" + ln.Addr().String())
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := cl.Health(context.Background()); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Fatalf("serve returned: %v", err)
		}
	}
	t.Cleanup(stop)
	return srv, cl, stop
}

// smallTrain runs the cheapest useful training grid.
func smallTrain(t *testing.T, cl *client.Client, workload string) *api.TrainResponse {
	t.Helper()
	noRange := false
	tr, err := cl.Train(context.Background(), api.TrainRequest{
		Workload:      workload,
		Shrink:        24,
		SizeFractions: []float64{0.5, 1.0},
		Partitions:    []int{150, 300},
		Range:         &noRange,
	})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	return tr
}

// apiStatus extracts the HTTP status from a client error.
func apiStatus(t *testing.T, err error) int {
	t.Helper()
	ae, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("error %v (%T) is not an *client.APIError", err, err)
	}
	return ae.Status
}

// TestUnknownWorkload404 pins the not-found mapping on both the pooled
// write path and the direct read path.
func TestUnknownWorkload404(t *testing.T) {
	_, cl, _ := startTestServer(t, Config{})
	ctx := context.Background()
	_, err := cl.Submit(ctx, api.SubmitRequest{Workload: "nope"})
	if got := apiStatus(t, err); got != http.StatusNotFound {
		t.Fatalf("submit unknown workload: status %d, want 404", got)
	}
	_, err = cl.Recommend(ctx, "nope", 0)
	if got := apiStatus(t, err); got != http.StatusNotFound {
		t.Fatalf("recommend unknown workload: status %d, want 404", got)
	}
	_, err = cl.Recommend(ctx, "kmeans", 0)
	if got := apiStatus(t, err); got != http.StatusConflict {
		t.Fatalf("recommend untrained workload: status %d, want 409", got)
	}
}

// TestQueueFull429 pins admission control: with the single worker blocked
// and the one queue slot taken, a submit must be rejected with 429 and a
// Retry-After hint — never queued unboundedly.
func TestQueueFull429(t *testing.T) {
	srv, cl, _ := startTestServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	gate := make(chan struct{})
	block := func(ctx context.Context) (any, error) { <-gate; return nil, nil }

	// First job occupies the worker...
	if err := srv.pool.submit(newJob(context.Background(), block)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.pool.depth() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the blocking job")
		}
		time.Sleep(time.Millisecond)
	}
	// ...the second fills the queue.
	if err := srv.pool.submit(newJob(context.Background(), block)); err != nil {
		t.Fatal(err)
	}

	_, err := cl.Submit(context.Background(), api.SubmitRequest{Workload: "kmeans", Shrink: 50})
	ae, ok := err.(*client.APIError)
	if !ok || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("submit against full queue: %v, want 429", err)
	}
	if ae.RetryAfter < time.Second {
		t.Fatalf("429 carried Retry-After %v, want >= 1s", ae.RetryAfter)
	}
	close(gate)
}

// TestDrainWritesLoadableSnapshot pins the clean-shutdown contract: an
// in-flight submit completes during the drain, the final snapshot is
// loadable and complete, and the journal is truncated.
func TestDrainWritesLoadableSnapshot(t *testing.T) {
	store := filepath.Join(t.TempDir(), "profiles.db")
	srv, cl, stop := startTestServer(t, Config{StorePath: store})
	smallTrain(t, cl, "kmeans")

	subErr := make(chan error, 1)
	go func() {
		_, err := cl.Submit(context.Background(), api.SubmitRequest{Workload: "kmeans", Shrink: 24})
		subErr <- err
	}()
	// Stop only once the submit has been admitted (queued or executing), so
	// the drain genuinely covers an in-flight job.
	deadline := time.Now().Add(10 * time.Second)
	for srv.pool.depth()+srv.pool.inflight() == 0 {
		if len(subErr) > 0 { // completed between polls — already admitted
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submit never admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	if err := <-subErr; err != nil {
		t.Fatalf("in-flight submit failed during drain: %v", err)
	}

	wantSamples := srv.DB().SampleCount("kmeans")
	db, err := core.LoadDB(store)
	if err != nil {
		t.Fatalf("snapshot not loadable: %v", err)
	}
	if got := db.SampleCount("kmeans"); got != wantSamples || got == 0 {
		t.Fatalf("snapshot has %d samples, want %d (> 0)", got, wantSamples)
	}
	if _, db2, err := core.OpenStore(store); err != nil {
		t.Fatalf("reopen store: %v", err)
	} else if got := db2.SampleCount("kmeans"); got != wantSamples {
		t.Fatalf("store reopen has %d samples, want %d", got, wantSamples)
	}
}

// TestCrashReplayReproducesState pins durability without a snapshot: with
// the daemon still running (journal only, synced per append), a second
// store opened on the same path must reproduce the sample count and the
// byte-exact recommend response — what a restart after SIGKILL sees.
func TestCrashReplayReproducesState(t *testing.T) {
	store := filepath.Join(t.TempDir(), "profiles.db")
	srv, cl, _ := startTestServer(t, Config{StorePath: store})
	smallTrain(t, cl, "kmeans")
	if _, err := cl.Submit(context.Background(), api.SubmitRequest{Workload: "kmeans", Shrink: 24}); err != nil {
		t.Fatal(err)
	}
	want := srv.DB().SampleCount("kmeans")
	r1, err := cl.RecommendRaw(context.Background(), "kmeans", 0)
	if err != nil {
		t.Fatalf("recommend: %v", err)
	}

	srv2, err := New(Config{StorePath: store})
	if err != nil {
		t.Fatalf("restart on journal: %v", err)
	}
	if got := srv2.DB().SampleCount("kmeans"); got != want || got == 0 {
		t.Fatalf("replayed DB has %d samples, want %d (> 0)", got, want)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/recommend?workload=kmeans", nil)
	rec := httptest.NewRecorder()
	srv2.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("recommend after replay: status %d: %s", rec.Code, rec.Body)
	}
	if !bytes.Equal(r1, rec.Body.Bytes()) {
		t.Fatalf("recommend changed across replay:\nlive:     %s\nreplayed: %s", r1, rec.Body.Bytes())
	}
}

// TestJobTimeoutClamped pins the deadline bound: a client-supplied
// TimeoutSeconds cannot extend a job past the server's JobTimeout, so one
// request can never pin a worker (or stall a graceful drain) indefinitely.
func TestJobTimeoutClamped(t *testing.T) {
	srv, _, _ := startTestServer(t, Config{JobTimeout: 100 * time.Millisecond})
	release := make(chan struct{})
	defer close(release)
	start := time.Now()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", nil)
	rec := httptest.NewRecorder()
	_, ok := srv.runJob(rec, req, 3600, func(ctx context.Context) (any, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return nil, nil
		}
	})
	if ok {
		t.Fatal("job succeeded despite exceeding the clamped deadline")
	}
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", rec.Code)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("job ran %v, want ~100ms under the clamp", elapsed)
	}
}

// TestOpsEndpoints pins /healthz and /metrics shape.
func TestOpsEndpoints(t *testing.T) {
	_, cl, _ := startTestServer(t, Config{})
	ctx := context.Background()
	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers < 1 || h.QueueCap < 1 {
		t.Fatalf("unexpected health: %+v", h)
	}
	if _, err := cl.Workloads(ctx); err != nil {
		t.Fatal(err)
	}
	text, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"chopperd_http_requests_total",
		"chopperd_queue_capacity",
		"chopperd_workers",
		`chopperd_http_seconds_bucket{path="/healthz",le="+Inf"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}
