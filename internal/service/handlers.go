package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"chopper/api"
	"chopper/internal/profiling"
	"chopper/internal/workloads"
)

// httpError carries an HTTP status through the job layer to the handler.
type httpError struct {
	status int
	msg    string
}

// Error implements error.
func (e *httpError) Error() string { return e.msg }

// httpErrf builds an httpError.
func httpErrf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// statusWriter records the response code for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	code int
}

// WriteHeader implements http.ResponseWriter.
func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// routes wires every endpoint family onto the mux.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.instrument("/v1/jobs", s.handleSubmit))
	s.mux.HandleFunc("POST /v1/train", s.instrument("/v1/train", s.handleTrain))
	s.mux.HandleFunc("GET /v1/recommend", s.instrument("/v1/recommend", s.handleRecommend))
	s.mux.HandleFunc("GET /v1/explain", s.instrument("/v1/explain", s.handleExplain))
	s.mux.HandleFunc("GET /v1/workloads", s.instrument("/v1/workloads", s.handleWorkloads))
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	profiling.AttachPprof(s.mux, "/debug/pprof")
}

// instrument wraps a handler with the request counter and latency histogram,
// labeled by route and response code.
func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.reg.Counter("chopperd_http_requests_total", "HTTP requests by route and status",
			"path="+path, "code="+strconv.Itoa(sw.code)).Inc()
		s.reg.Histogram("chopperd_http_seconds", "HTTP request latency by route",
			"path="+path).Observe(time.Since(start).Seconds())
	}
}

// writeJSON renders v with a status code.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The client is gone if this fails; nothing useful to do with the error.
	_ = enc.Encode(v)
}

// writeError renders err as the api.Error body, mapping admission and job
// errors to their statuses (429 carries Retry-After).
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	body := api.Error{Status: http.StatusInternalServerError, Error: err.Error()}
	switch e := err.(type) {
	case *httpError:
		body.Status = e.status
	default:
		switch {
		case err == errQueueFull:
			body.Status = http.StatusTooManyRequests
		case err == errDraining:
			body.Status = http.StatusServiceUnavailable
		case r.Context().Err() != nil:
			body.Status = http.StatusGatewayTimeout
		}
	}
	if body.Status == http.StatusTooManyRequests {
		secs := math.Ceil(s.cfg.RetryAfter.Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(int(secs)))
		body.RetryAfterSeconds = secs
	}
	s.writeJSON(w, body.Status, body)
}

// runJob admits fn to the worker pool under the request deadline and waits
// for its result, mapping queue-full, draining, and timeout outcomes.
func (s *Server) runJob(w http.ResponseWriter, r *http.Request, timeoutSeconds float64, fn func(ctx context.Context) (any, error)) (any, bool) {
	if s.draining.Load() {
		s.writeError(w, r, errDraining)
		return nil, false
	}
	// A client may shorten its deadline but never extend it past the
	// server's JobTimeout, which bounds how long one request can pin a
	// worker (and so how long a graceful drain can take).
	d := s.cfg.JobTimeout
	if timeoutSeconds > 0 {
		if req := time.Duration(timeoutSeconds * float64(time.Second)); req < d {
			d = req
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	j := newJob(ctx, fn)
	if err := s.pool.submit(j); err != nil {
		s.writeError(w, r, err)
		return nil, false
	}
	select {
	case res := <-j.done:
		if res.err != nil {
			s.writeError(w, r, res.err)
			return nil, false
		}
		return res.v, true
	case <-ctx.Done():
		// The worker will still drain the job; its result lands in the
		// buffered done channel and is dropped.
		s.writeError(w, r, httpErrf(http.StatusGatewayTimeout, "service: job deadline exceeded: %v", ctx.Err()))
		return nil, false
	}
}

// rejectReadOnly refuses mutating requests on a replica, which serves the
// read family only; writes belong to the shard primary (the fleet router
// routes them there).
func (s *Server) rejectReadOnly(w http.ResponseWriter, r *http.Request) bool {
	if s.cfg.Role != "replica" {
		return false
	}
	s.writeError(w, r, httpErrf(http.StatusForbidden,
		"service: replica is read-only; send writes to the shard primary %s", s.cfg.PrimaryURL))
	return true
}

// handleSubmit runs one workload job through a pooled session.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.rejectReadOnly(w, r) {
		return
	}
	var req api.SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, r, httpErrf(http.StatusBadRequest, "service: bad submit body: %v", err))
		return
	}
	v, ok := s.runJob(w, r, req.TimeoutSeconds, func(ctx context.Context) (any, error) {
		return s.runSubmit(ctx, req)
	})
	if ok {
		s.writeJSON(w, http.StatusOK, v)
	}
}

// handleTrain runs incremental profiling for one workload.
func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	if s.rejectReadOnly(w, r) {
		return
	}
	var req api.TrainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, r, httpErrf(http.StatusBadRequest, "service: bad train body: %v", err))
		return
	}
	v, ok := s.runJob(w, r, req.TimeoutSeconds, func(ctx context.Context) (any, error) {
		return s.runTrain(ctx, req)
	})
	if ok {
		s.writeJSON(w, http.StatusOK, v)
	}
}

// workloadParams parses the ?workload= and ?inputBytes= query parameters
// shared by the read-only endpoints.
func (s *Server) workloadParams(r *http.Request) (string, int64, error) {
	name := r.URL.Query().Get("workload")
	wl, err := workloads.ByName(name)
	if err != nil {
		return "", 0, httpErrf(http.StatusNotFound, "service: unknown workload %q", name)
	}
	bytes := wl.DefaultInputBytes()
	if raw := r.URL.Query().Get("inputBytes"); raw != "" {
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || n <= 0 {
			return "", 0, httpErrf(http.StatusBadRequest, "service: bad inputBytes %q", raw)
		}
		bytes = n
	}
	return name, bytes, nil
}

// handleRecommend answers the read-only tuning question. It runs entirely on
// the handler goroutine against a copy-on-read DB snapshot — never through
// the worker pool — so recommendations stay fast while training runs.
func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	name, bytes, err := s.workloadParams(r)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	resp, err := s.recommend(name, bytes)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleExplain renders the optimizer's per-stage reasoning as text.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	name, bytes, err := s.workloadParams(r)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	text, err := s.explain(name, bytes)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = fmt.Fprint(w, text)
}

// handleWorkloads lists the built-in workloads and their profile state.
func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	resp := api.WorkloadsResponse{}
	for _, wl := range workloads.AllWithExtensions() {
		name := wl.Name()
		resp.Workloads = append(resp.Workloads, api.WorkloadInfo{
			Name:              name,
			DefaultInputBytes: wl.DefaultInputBytes(),
			Runs:              s.db.RunCount(name),
			Samples:           s.db.SampleCount(name),
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleHealthz reports liveness and queue state.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := api.Health{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.cfg.Workers,
		QueueDepth:    s.pool.depth(),
		ActiveJobs:    s.pool.inflight(),
		QueueCap:      s.pool.cap(),
		Draining:      s.draining.Load(),
	}
	if h.Draining {
		h.Status = "draining"
	}
	if s.store != nil {
		h.StorePath = s.store.SnapshotPath()
		h.JournalRecords = s.store.JournalRecords()
	}
	h.Role = s.cfg.Role
	h.ShardID = s.cfg.ShardID
	h.ShardCount = s.cfg.ShardCount
	if s.repl != nil {
		st := s.repl.Status()
		h.ReplicationEpoch = st.Epoch
		h.ReplicationPos = st.Pos
		h.ReplicationLagBytes = st.LagBytes
		h.ReplicationSynced = st.Synced
		h.ReplicationError = st.LastErr
		// A replica that has never fully caught up is not ready for reads;
		// the fleet router keeps it out of the read path until "ok".
		if !st.Synced && h.Status == "ok" {
			h.Status = "syncing"
		}
	}
	s.writeJSON(w, http.StatusOK, h)
}

// handleMetrics renders the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		// Mid-stream failure: the client is gone; headers are already out.
		return
	}
}
