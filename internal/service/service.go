// Package service implements chopperd, the tuning-as-a-service daemon: a
// long-running HTTP/JSON server that owns a shared, durably persisted
// workload database (core.DB + core.Store) and serves four endpoint
// families — submit-job, train, recommend/explain, and ops (/healthz,
// /metrics, /debug/pprof). See api for the wire types and DESIGN.md §9 for
// the serving architecture.
//
// Concurrency shape: HTTP handlers are the only producers; writes (submit,
// train) are admitted to a bounded worker pool (queue full → 429 with
// Retry-After), while reads (recommend, explain, workloads) run directly on
// the handler against a copy-on-read DB snapshot, so they never queue
// behind — or block — training. The DB itself is single-writer/multi-reader
// (core.DB's locking contract); durability is an append-only journal of
// observations plus an atomic snapshot written on graceful shutdown.
package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"chopper"
	"chopper/internal/core"
	"chopper/internal/fleet"
	"chopper/internal/metrics"
	"chopper/internal/workloads"
)

// Config shapes a Server.
type Config struct {
	// StorePath is the durable profile store base path (snapshot at the
	// path, journal at path+".journal"). Empty runs in-memory only.
	StorePath string
	// Workers is the job worker-pool size (default max(2, NumCPU)).
	Workers int
	// QueueDepth caps the admitted-but-unstarted job queue (default 128).
	QueueDepth int
	// Shrink is the default physical-dataset shrink factor for job and
	// training runs (default 12; logical sizes are unaffected).
	Shrink int
	// JobTimeout is the default per-request deadline covering queue wait
	// plus execution, and the upper bound client-supplied TimeoutSeconds
	// values are clamped to (default 5m).
	JobTimeout time.Duration
	// RetryAfter is the backoff hint attached to 429 responses (default 1s).
	RetryAfter time.Duration
	// SessionOptions configure every pooled session (cluster, parallelism).
	SessionOptions []chopper.Option
	// SyncAppends controls journal fsync per observation (default true);
	// benchmarks may disable it.
	SyncAppends *bool
	// Role selects the fleet role: "" (standalone), "primary" (owns one
	// shard's writes and serves the replication stream), or "replica"
	// (read-only; converges on PrimaryURL's journal). See internal/fleet.
	Role string
	// ShardID and ShardCount locate the daemon in the fleet hash ring;
	// reported in /healthz — routing itself lives in the fleet router.
	ShardID    int
	ShardCount int
	// PrimaryURL is the shard primary a replica pulls from (replicas only).
	PrimaryURL string
	// ReplPoll is the replica's idle poll interval (default 200ms).
	ReplPoll time.Duration
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
		if c.Workers < 2 {
			c.Workers = 2
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.Shrink <= 0 {
		c.Shrink = 12
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the chopperd daemon.
type Server struct {
	cfg      Config
	db       *core.DB
	store    *core.Store // nil when in-memory
	pool     *workPool
	sessions *chopper.SessionPool
	reg      *metrics.Registry
	mux      *http.ServeMux
	http     *http.Server
	start    time.Time
	draining atomic.Bool

	// repl is the journal puller (replica role only); replStop ends its
	// loop, once.
	repl         *fleet.Replicator
	replStop     chan struct{}
	replStopOnce sync.Once

	// serveOnce guards against double Serve, shutdownOnce against double
	// store teardown. shutdownDone closes when Shutdown returns; Serve
	// waits on it (when draining) so the process cannot exit between a
	// job finishing and its handler flushing the response to the client.
	serveOnce        sync.Once
	shutdownOnce     sync.Once
	shutdownDone     chan struct{}
	shutdownDoneOnce sync.Once
}

// New builds a server: opens (and replays) the durable store when
// configured, then wires the endpoint mux. The daemon does not accept
// traffic until Serve.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	switch cfg.Role {
	case "", "primary", "replica":
	default:
		return nil, fmt.Errorf("service: unknown role %q (want primary, replica, or empty)", cfg.Role)
	}
	if cfg.Role == "replica" && (cfg.StorePath == "" || cfg.PrimaryURL == "") {
		return nil, fmt.Errorf("service: replica role needs -store and -primary")
	}
	s := &Server{
		cfg:          cfg,
		db:           core.NewDB(),
		pool:         newWorkPool(cfg.Workers, cfg.QueueDepth),
		sessions:     chopper.NewSessionPool(cfg.SessionOptions...),
		reg:          metrics.NewRegistry(),
		start:        time.Now(),
		shutdownDone: make(chan struct{}),
	}
	if cfg.StorePath != "" {
		store, db, err := core.OpenStore(cfg.StorePath)
		if err != nil {
			return nil, fmt.Errorf("service: open store: %w", err)
		}
		if cfg.SyncAppends != nil {
			store.SyncAppends = *cfg.SyncAppends
		}
		// A replica's journal is the shipped copy of the primary's stream:
		// the replicator appends raw bytes itself, so the store must NOT
		// also observe DB mutations — that would journal every applied
		// record twice and fork the byte-prefix invariant.
		if cfg.Role != "replica" {
			store.Attach(db)
		}
		s.store, s.db = store, db
	}
	if cfg.Role == "replica" {
		repl, err := fleet.NewReplicator(fleet.ReplicatorConfig{
			PrimaryURL: cfg.PrimaryURL,
			Store:      s.store,
			DB:         s.db,
			Poll:       cfg.ReplPoll,
		})
		if err != nil {
			return nil, fmt.Errorf("service: build replicator: %w", err)
		}
		s.repl = repl
		s.replStop = make(chan struct{})
	}
	s.mux = http.NewServeMux()
	s.routes()
	// Any daemon with a durable store can feed replicas; a replica itself
	// must not re-export the stream it is still converging on.
	if s.store != nil && cfg.Role != "replica" {
		fleet.RegisterRepl(s.mux, s.store)
	}
	s.registerGauges()
	s.http = &http.Server{Handler: s.mux}
	return s, nil
}

// DB exposes the shared workload database (tests).
func (s *Server) DB() *core.DB { return s.db }

// Handler exposes the endpoint mux (in-process benchmarks and tests).
func (s *Server) Handler() http.Handler { return s.mux }

// registerGauges wires the scrape-time gauges: live state sampled right
// before every /metrics render.
func (s *Server) registerGauges() {
	s.reg.OnScrape(func() {
		s.reg.Gauge("chopperd_queue_depth", "jobs admitted but not yet started").Set(int64(s.pool.depth()))
		s.reg.Gauge("chopperd_active_jobs", "jobs currently executing on a worker").Set(int64(s.pool.inflight()))
		s.reg.Gauge("chopperd_queue_capacity", "admission-control queue cap").Set(int64(s.pool.cap()))
		s.reg.Gauge("chopperd_workers", "job worker-pool size").Set(int64(s.cfg.Workers))
		s.reg.Gauge("chopperd_uptime_seconds", "seconds since process start").Set(int64(time.Since(s.start).Seconds()))
		s.reg.Gauge("chopperd_goroutines", "live goroutines").Set(int64(runtime.NumGoroutine()))
		for _, w := range workloads.AllWithExtensions() {
			name := w.Name()
			s.reg.Gauge("chopperd_db_samples", "profile-store observations", "workload="+name).Set(int64(s.db.SampleCount(name)))
			s.reg.Gauge("chopperd_db_runs", "profile-store recorded runs", "workload="+name).Set(int64(s.db.RunCount(name)))
		}
		if s.store != nil {
			s.reg.Gauge("chopperd_journal_records", "observations not yet covered by a snapshot").Set(int64(s.store.JournalRecords()))
		}
		if s.repl != nil {
			st := s.repl.Status()
			s.reg.Gauge("chopperd_replication_lag_bytes", "journal bytes the replica is behind its primary").Set(st.LagBytes)
			s.reg.Gauge("chopperd_replication_pos_bytes", "replica position in the primary journal stream").Set(st.Pos)
			s.reg.Gauge("chopperd_replication_epoch", "journal stream epoch the replica is on").Set(st.Epoch)
		}
	})
}

// Listen opens a TCP listener on addr (":0" for an ephemeral port).
func (s *Server) Listen(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("service: listen %s: %w", addr, err)
	}
	return ln, nil
}

// Serve runs the daemon on ln until Shutdown, then completes the drain:
// the worker pool finishes every admitted job, the final snapshot is
// written, and the store is closed. It returns nil after a clean
// shutdown-and-drain.
func (s *Server) Serve(ln net.Listener) error {
	started := false
	s.serveOnce.Do(func() { started = true })
	if !started {
		return errors.New("service: Serve called twice")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.pool.run()
	}()
	if s.repl != nil {
		wg.Add(1)
		//lint:ignore journalorder replication pull loop, not a request-ack path; journal appends here precede the replica's durable-position advance, and the goroutine is barriered by wg.Wait below
		go func() {
			defer wg.Done()
			s.repl.Run(s.replStop)
		}()
	}
	err := s.http.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	// Shutdown has stopped admission and closed the pool once in-flight
	// handlers returned; on the error path (Serve failed outright) close
	// it here so the workers exit. Either way, wait for the drain.
	s.pool.close()
	s.stopRepl()
	wg.Wait()
	// The pool draining is not the whole drain: handlers that admitted
	// those jobs may still be writing their responses, and only Shutdown's
	// http.Shutdown waits for them. Block until it returns, so a caller
	// exiting the process when Serve returns can never cut off an
	// acknowledged in-flight response mid-write.
	if s.draining.Load() {
		<-s.shutdownDone
	}
	if ferr := s.finalizeStore(); ferr != nil && err == nil {
		err = ferr
	}
	return err
}

// finalizeStore writes the final snapshot and closes the journal (once).
// A replica only closes: its journal is a byte-identical prefix of the
// primary's stream, and a local snapshot would truncate it (and bump the
// epoch), discarding the position the next start resumes pulling from.
func (s *Server) finalizeStore() error {
	var err error
	s.shutdownOnce.Do(func() {
		if s.store == nil {
			return
		}
		if s.repl == nil {
			if serr := s.store.Snapshot(s.db); serr != nil {
				err = fmt.Errorf("service: final snapshot: %w", serr)
				return
			}
		}
		if cerr := s.store.Close(); cerr != nil {
			err = fmt.Errorf("service: close store: %w", cerr)
		}
	})
	return err
}

// stopRepl ends the replication pull loop (once; no-op off-replica).
func (s *Server) stopRepl() {
	if s.repl == nil {
		return
	}
	s.replStopOnce.Do(func() { close(s.replStop) })
}

// Shutdown gracefully stops the daemon: admission is cut (new jobs get
// 503), in-flight handlers — and the jobs they wait on — are given until
// ctx expires, then the listener closes and Serve finishes the drain and
// snapshot. Safe to call from a signal handler while Serve blocks.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	defer s.shutdownDoneOnce.Do(func() { close(s.shutdownDone) })
	err := s.http.Shutdown(ctx)
	s.pool.close()
	s.stopRepl()
	return err
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }
