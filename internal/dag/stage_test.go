package dag

import (
	"testing"

	"chopper/internal/rdd"
)

func genSource(ctx *rdd.Context, n int) *rdd.RDD {
	return ctx.Generate("src", n, 1000, func(split, total int) []rdd.Row {
		var rows []rdd.Row
		for i := 0; i < 20; i++ {
			if int(rdd.KeyHash(i)%uint64(total)) == split {
				rows = append(rows, rdd.Pair{K: i, V: float64(i)})
			}
		}
		return rows
	})
}

func TestBuildStagesNarrowOnly(t *testing.T) {
	ctx := rdd.NewContext(4)
	r := genSource(ctx, 4).Map(func(r rdd.Row) rdd.Row { return r }).Filter(func(rdd.Row) bool { return true })
	result, topo := buildStages(r, nil)
	if len(topo) != 1 || !result.IsResult {
		t.Fatalf("narrow job should be a single result stage, got %d stages", len(topo))
	}
	if result.NumTasks() != 4 {
		t.Fatalf("tasks = %d", result.NumTasks())
	}
	if result.PartitionerName() != "input" {
		t.Fatalf("source stage partitioner = %q", result.PartitionerName())
	}
}

func TestBuildStagesWithShuffle(t *testing.T) {
	ctx := rdd.NewContext(4)
	red := genSource(ctx, 4).ReduceByKey(func(a, b any) any { return a }, 8)
	tail := red.MapValues(func(v any) any { return v })
	result, topo := buildStages(tail, nil)
	if len(topo) != 2 {
		t.Fatalf("expected map + result stages, got %d", len(topo))
	}
	mapStage := topo[0]
	if mapStage.IsResult || mapStage.OutDep == nil {
		t.Fatalf("first stage should be the shuffle map stage")
	}
	if mapStage.NumTasks() != 4 {
		t.Fatalf("map tasks = %d, want 4", mapStage.NumTasks())
	}
	if result.NumTasks() != 8 {
		t.Fatalf("result tasks = %d, want 8", result.NumTasks())
	}
	if len(result.Parents) != 1 || result.Parents[0] != mapStage {
		t.Fatalf("parent wiring wrong")
	}
	if result.PartitionerName() != "hash" {
		t.Fatalf("reduce stage partitioner = %q", result.PartitionerName())
	}
	if !result.Fixed() {
		t.Fatalf("explicit-count reduce stage should be fixed")
	}
}

func TestBuildStagesJoinDiamond(t *testing.T) {
	ctx := rdd.NewContext(4)
	left := genSource(ctx, 2).ReduceByKey(func(a, b any) any { return a }, 0)
	right := genSource(ctx, 2).ReduceByKey(func(a, b any) any { return a }, 0)
	joined := left.Join(right, nil)
	result, topo := buildStages(joined, nil)
	// Stages: 2 agg map stages + 2 join-input map stages + result.
	if len(topo) != 5 {
		t.Fatalf("join job stage count = %d, want 5", len(topo))
	}
	if !result.IsJoinLike() {
		t.Fatalf("result stage should be join-like")
	}
	if len(result.Parents) != 2 {
		t.Fatalf("join result should have two parents, got %d", len(result.Parents))
	}
	waves := Waves(topo)
	if len(waves) != 2 {
		t.Fatalf("join job should form 2 map waves, got %d", len(waves))
	}
	if len(waves[0]) != 2 || len(waves[1]) != 2 {
		t.Fatalf("wave shapes wrong: %d, %d", len(waves[0]), len(waves[1]))
	}
}

func TestSignatureStableAcrossIterations(t *testing.T) {
	ctx := rdd.NewContext(4)
	base := genSource(ctx, 4).Cache()
	sig := func() (string, string) {
		red := base.MapPartitions("assign", 2.0, func(_ int, rows []rdd.Row) []rdd.Row { return rows }).
			ReduceByKey(func(a, b any) any { return a }, 0)
		_, topo := buildStages(red.MapValues(func(v any) any { return v }), nil)
		return topo[0].Signature, topo[1].Signature
	}
	m1, r1 := sig()
	m2, r2 := sig()
	if m1 != m2 || r1 != r2 {
		t.Fatalf("iterative stages must share signatures: %s/%s vs %s/%s", m1, r1, m2, r2)
	}
	if m1 == r1 {
		t.Fatalf("map and reduce stages must not collide")
	}
}

func TestSignatureDistinguishesPipelines(t *testing.T) {
	ctx := rdd.NewContext(4)
	a := genSource(ctx, 4).Map(func(r rdd.Row) rdd.Row { return r })
	b := genSource(ctx, 4).Filter(func(rdd.Row) bool { return true })
	_, ta := buildStages(a, nil)
	_, tb := buildStages(b, nil)
	if ta[0].Signature == tb[0].Signature {
		t.Fatalf("different op chains must have different signatures")
	}
}

func TestStageFixedSemantics(t *testing.T) {
	ctx := rdd.NewContext(4)
	tunable := genSource(ctx, 0).ReduceByKey(func(a, b any) any { return a }, 0)
	_, topo := buildStages(tunable, nil)
	if topo[1].Fixed() {
		t.Fatalf("default-parallelism reduce should be tunable")
	}
	if topo[0].Fixed() {
		t.Fatalf("tunable generator source stage should not be fixed")
	}
	pinnedSrc := ctx.Generate("pinned", 3, 100, func(s, n int) []rdd.Row { return nil })
	_, topo2 := buildStages(pinnedSrc.Map(func(r rdd.Row) rdd.Row { return r }), nil)
	if !topo2[0].Fixed() {
		t.Fatalf("explicit-count source stage should be fixed")
	}
}

func TestWavesLinearChain(t *testing.T) {
	ctx := rdd.NewContext(2)
	r := genSource(ctx, 2).
		ReduceByKey(func(a, b any) any { return a }, 2).
		MapValues(func(v any) any { return v }).
		ReduceByKey(func(a, b any) any { return a }, 2)
	_, topo := buildStages(r, nil)
	waves := Waves(topo)
	if len(waves) != 2 || len(waves[0]) != 1 || len(waves[1]) != 1 {
		t.Fatalf("linear chain should give two singleton waves: %v", waves)
	}
}

func TestStageStringAndName(t *testing.T) {
	ctx := rdd.NewContext(2)
	r := genSource(ctx, 2).ReduceByKey(func(a, b any) any { return a }, 2)
	result, topo := buildStages(r, nil)
	if topo[0].Name() != "map:src" {
		t.Fatalf("map stage name = %q", topo[0].Name())
	}
	if result.Name() != "result:reduceByKey" {
		t.Fatalf("result stage name = %q", result.Name())
	}
	if result.String() == "" {
		t.Fatalf("String should render")
	}
}
