package dag

import (
	"fmt"
	"sync"

	"chopper/internal/rdd"
)

// SchemeSpec is the per-stage partitioning decision from a configuration.
type SchemeSpec struct {
	Scheme        rdd.SchemeName
	NumPartitions int
	// InsertRepartition permits adding an extra repartition phase when the
	// stage's own partitioning is user-fixed (paper Algorithm 3).
	InsertRepartition bool
	// Override retunes even user-fixed stages. CHOPPER's production
	// configurations never set it; the profiler's test runs do, since the
	// models need observations across partition counts for every stage.
	Override bool
}

// StageConfigurator supplies CHOPPER's dynamic per-stage configuration to
// the scheduler. A nil configurator reproduces vanilla Spark.
type StageConfigurator interface {
	// Scheme returns the desired partitioning for the stage with the given
	// signature. ok=false leaves the application's defaults untouched.
	Scheme(signature string) (SchemeSpec, bool)
	// Refresh is called before each job so dynamically updated
	// configuration files can be re-read (paper Section III-A).
	Refresh()
}

// StageRunner executes stages on the simulated cluster. Implemented by
// internal/exec; declared here to keep the scheduler engine-agnostic.
type StageRunner interface {
	// RunWave executes the map stages of one dependency wave. Runners may
	// overlap stages of a wave in simulated time (CHOPPER's combined
	// shuffle-write scheduling) or serialize them (vanilla).
	RunWave(stages []*Stage) error
	// RunResult executes the result stage, applying fn to each partition.
	RunResult(st *Stage, fn func(split int, rows []rdd.Row) (any, error)) ([]any, error)
	// Materialize computes one partition driver-side (no simulated cost),
	// assuming all upstream shuffles are complete. Used for range bounds
	// sampling.
	Materialize(r *rdd.RDD, split int) ([]rdd.Row, error)
	// CachedComplete reports whether every partition of r is resident in the
	// cache, which lets the scheduler skip the stages feeding it (Spark's
	// "skipped stages").
	CachedComplete(r *rdd.RDD) bool
}

// ShuffleRetirer is optionally implemented by stage runners whose shuffle
// storage frees whole generations at once (the columnar arena layout).
// At each job submission the scheduler hands it every shuffle id still
// reachable from the job's lineage; the runner may release the rest.
// Lineage ids — not just the ids of stages that will run — are the safe
// set: a pruned producer stage keeps its old shuffle id on the dependency,
// and a mid-job cache loss recomputes through exactly those old shuffles.
type ShuffleRetirer interface {
	RetireShufflesExcept(live []int)
}

// StageInfo is the DAG metadata reported to observers (the statistics
// collector feeding CHOPPER's workload DB).
type StageInfo struct {
	ID         int
	Signature  string
	Name       string
	ParentSigs []string
	Fixed      bool
	IsJoinLike bool
	IsResult   bool
	NumTasks   int
	Partition  string // partitioner scheme name
	PinKey     string // partition-dependency group (cached-RDD signature)
}

// Scheduler is the job-level DAG scheduler (Spark's DAGScheduler analogue).
type Scheduler struct {
	mu sync.Mutex

	ctx    *rdd.Context
	runner StageRunner

	nextStageID   int
	nextShuffleID int

	// Configurator, when set, retunes stages from CHOPPER's configuration.
	Configurator StageConfigurator

	// OnJob observes the stage graph of every submitted job.
	OnJob func(stages []StageInfo)

	// OnPlan observes every job's raw stage plan at the same point Verify
	// sees it: configuration applied, cached stages not yet pruned, IDs not
	// yet assigned. That makes the observed structure directly comparable
	// to a cold dag.BuildPlan over the same lineage (only signatures differ
	// with cache warmth). cmd/chopperplan's drift gate hangs off this.
	OnPlan func(result *Stage, topo []*Stage)

	// Verify, when non-nil, inspects every job's stage graph right after it
	// is built (configuration already applied, cached stages not yet pruned,
	// IDs not yet assigned). Returning an error aborts the job before any
	// stage runs. internal/plan/verify provides the standard implementations:
	// a strict hook for tests and a logging hook for production sessions.
	Verify func(result *Stage, topo []*Stage) error

	// RangeSampleSplits bounds how many map partitions are sampled when
	// materializing range-partitioner bounds. Zero or negative samples every
	// split (Spark samples all partitions; a subset of a range-partitioned
	// parent would be a badly clustered sample).
	RangeSampleSplits int
}

// NewScheduler creates a scheduler bound to a context and stage runner,
// and attaches itself as the context's JobRunner.
func NewScheduler(ctx *rdd.Context, runner StageRunner) *Scheduler {
	s := &Scheduler{ctx: ctx, runner: runner}
	ctx.SetRunner(s)
	return s
}

// StagesBuilt reports how many stages have been submitted so far.
func (s *Scheduler) StagesBuilt() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextStageID
}

// RunJob implements rdd.JobRunner: it plans and executes the stages needed
// to evaluate fn over every partition of target.
func (s *Scheduler) RunJob(target *rdd.RDD, fn func(split int, rows []rdd.Row) (any, error)) ([]any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	if s.Configurator != nil {
		s.Configurator.Refresh()
		if err := s.applyConfig(target); err != nil {
			return nil, err
		}
	}
	rdd.PropagateCounts(target)

	result, topo := buildStages(target, s.warmFn())
	if s.OnPlan != nil {
		s.OnPlan(result, topo)
	}
	if s.Verify != nil {
		if err := s.Verify(result, topo); err != nil {
			return nil, err
		}
	}
	topo = s.pruneCachedStages(result, topo)
	for _, st := range topo {
		st.ID = s.nextStageID
		s.nextStageID++
		if st.OutDep != nil {
			s.nextShuffleID++
			st.OutDep.ShuffleID = s.nextShuffleID
		}
	}
	if s.OnJob != nil {
		s.OnJob(stageInfos(topo))
	}
	if r, ok := s.runner.(ShuffleRetirer); ok {
		// Shuffles no earlier job left reachable from this job's lineage
		// can never be read again: their arenas retire as one generation.
		r.RetireShufflesExcept(liveShuffleIDs(target))
	}

	for _, wave := range Waves(topo) {
		for _, st := range wave {
			if err := s.prepareRangeBounds(target, st); err != nil {
				return nil, err
			}
		}
		if err := s.runner.RunWave(wave); err != nil {
			return nil, err
		}
	}
	return s.runner.RunResult(result, fn)
}

// liveShuffleIDs collects every assigned shuffle id on any shuffle
// dependency in target's lineage — the full reachable set, deliberately
// ignoring cache warmth: dependencies below the cache frontier keep their
// ids from the job that ran them, and a cache eviction mid-job (node
// loss) recomputes through them.
func liveShuffleIDs(target *rdd.RDD) []int {
	var live []int
	for _, r := range target.Lineage() {
		for _, d := range r.Deps {
			if sd, ok := d.(*rdd.ShuffleDep); ok && sd.ShuffleID > 0 {
				live = append(live, sd.ShuffleID)
			}
		}
	}
	return live
}

// warmFn adapts the runner's cache-residency check for signatures.
func (s *Scheduler) warmFn() func(*rdd.RDD) bool {
	return func(r *rdd.RDD) bool { return s.runner.CachedComplete(r) }
}

// pruneCachedStages drops stages that only exist to feed shuffle-input RDDs
// whose every partition is already cached (Spark's skipped stages), along
// with their no-longer-needed ancestors. The surviving stages keep
// parent-before-child order; parent links to pruned stages are removed.
func (s *Scheduler) pruneCachedStages(result *Stage, topo []*Stage) []*Stage {
	needed := map[*Stage]bool{}
	var visit func(st *Stage)
	visit = func(st *Stage) {
		if needed[st] {
			return
		}
		needed[st] = true
		live := s.liveInDeps(st)
		for i, dep := range st.InDeps {
			if !live[dep] {
				continue
			}
			visit(st.Parents[i])
		}
	}
	visit(result)
	kept := make([]*Stage, 0, len(topo))
	for _, st := range topo {
		if !needed[st] {
			continue
		}
		var parents []*Stage
		var deps []*rdd.ShuffleDep
		for i, p := range st.Parents {
			if needed[p] {
				parents = append(parents, p)
				deps = append(deps, st.InDeps[i])
			}
		}
		st.Parents = parents
		st.InDeps = deps
		kept = append(kept, st)
	}
	return kept
}

// liveInDeps walks the stage's narrow chain from its final RDD, stopping at
// cached-and-resident RDDs (materialization will read the cache and never
// descend further — Spark's uncached frontier), and reports which input
// shuffles are still reachable and therefore actually needed.
func (s *Scheduler) liveInDeps(st *Stage) map[*rdd.ShuffleDep]bool {
	live := map[*rdd.ShuffleDep]bool{}
	seen := map[int]bool{}
	var walk func(r *rdd.RDD)
	walk = func(r *rdd.RDD) {
		if seen[r.ID] {
			return
		}
		seen[r.ID] = true
		if r.Cached && s.runner.CachedComplete(r) {
			return
		}
		for _, d := range r.Deps {
			switch dep := d.(type) {
			case *rdd.NarrowDep:
				walk(dep.P)
			case *rdd.ShuffleDep:
				live[dep] = true
			}
		}
	}
	walk(st.Final)
	return live
}

func stageInfos(topo []*Stage) []StageInfo {
	infos := make([]StageInfo, len(topo))
	for i, st := range topo {
		psigs := make([]string, 0, len(st.Parents))
		for _, p := range st.Parents {
			psigs = append(psigs, p.Signature)
		}
		infos[i] = StageInfo{
			ID:         st.ID,
			Signature:  st.Signature,
			Name:       st.Name(),
			ParentSigs: psigs,
			Fixed:      st.Fixed(),
			IsJoinLike: st.IsJoinLike(),
			IsResult:   st.IsResult,
			NumTasks:   st.NumTasks(),
			Partition:  st.PartitionerName(),
			PinKey:     st.PinKey(),
		}
	}
	return infos
}

// prepareRangeBounds materializes sampled range-partitioner bounds for a
// stage whose output shuffle wants range partitioning (Spark's sampling
// pass before a range shuffle).
func (s *Scheduler) prepareRangeBounds(target *rdd.RDD, st *Stage) error {
	dep := st.OutDep
	if dep == nil || !dep.WantRange {
		return nil
	}
	rp, ok := dep.Part.(*rdd.RangePartitioner)
	if !ok {
		return fmt.Errorf("dag: WantRange dep with %T partitioner", dep.Part)
	}
	if len(rp.Bounds()) > 0 {
		return nil
	}
	n := dep.P.NumParts
	step := 1
	if s.RangeSampleSplits > 0 {
		step = n / s.RangeSampleSplits
		if step < 1 {
			step = 1
		}
	}
	var parts [][]rdd.Row
	for split := 0; split < n; split += step {
		rows, err := s.runner.Materialize(dep.P, split)
		if err != nil {
			return fmt.Errorf("dag: range sampling: %w", err)
		}
		parts = append(parts, rows)
	}
	sample := rdd.SampleKeysForRange(parts, 20)
	fresh := rdd.NewRangePartitionerFromSample(rp.NumPartitions(), sample)
	relinkPartitioner(target, rp, fresh)
	dep.Part = fresh
	dep.WantRange = false
	return nil
}

// relinkPartitioner replaces every alias of old across the lineage of
// target, preserving co-partitioning identity.
func relinkPartitioner(target *rdd.RDD, old, fresh rdd.Partitioner) {
	for _, r := range target.Lineage() {
		if r.Part != nil && r.Part.Identity() == old.Identity() {
			r.Part = fresh
		}
	}
	for _, r := range target.Lineage() {
		for _, d := range r.Deps {
			if sd, ok := d.(*rdd.ShuffleDep); ok && sd.Part != nil && sd.Part.Identity() == old.Identity() {
				sd.Part = fresh
			}
		}
	}
}

// applyConfig rewrites the job's RDD graph according to the configurator:
// tunable shuffles adopt the configured partitioner and count, tunable
// sources are re-split, and fixed stages optionally gain an inserted
// repartition phase. It runs before stage ids are assigned, so inserted
// phases become ordinary stages.
func (s *Scheduler) applyConfig(target *rdd.RDD) error {
	rdd.PropagateCounts(target)
	_, topo := buildStages(target, s.warmFn())
	for _, st := range topo {
		spec, ok := s.Configurator.Scheme(st.Signature)
		if !ok {
			continue
		}
		if spec.NumPartitions <= 0 || !rdd.ValidScheme(spec.Scheme) {
			return fmt.Errorf("dag: invalid scheme %q x%d for stage %s", spec.Scheme, spec.NumPartitions, st.Signature)
		}
		// A stage whose chain contains an already-materialized cached RDD is
		// pinned to that RDD's partitioning: retuning it would invalidate the
		// cache and force a full upstream recomputation (Spark cannot change
		// the partitioning of a materialized cached RDD either).
		if s.stageHasMaterializedCache(st) {
			continue
		}
		if len(st.InDeps) > 0 {
			if !st.Fixed() || spec.Override {
				s.retuneStageInput(target, st, spec)
			} else if spec.InsertRepartition {
				s.insertRepartition(target, st, spec)
			}
			continue
		}
		// Source stage.
		src := st.sourceRDD()
		if src == nil {
			continue
		}
		if !src.Fixed || spec.Override {
			src.NumParts = spec.NumPartitions
		} else if spec.InsertRepartition {
			s.insertRepartition(target, st, spec)
		}
	}
	rdd.PropagateCounts(target)
	return nil
}

// stageHasMaterializedCache reports whether any RDD in the stage's narrow
// chain is cached and fully resident.
func (s *Scheduler) stageHasMaterializedCache(st *Stage) bool {
	found := false
	walkNarrow(st.Final, func(r *rdd.RDD) {
		if r.Cached && s.runner.CachedComplete(r) {
			found = true
		}
	})
	return found
}

func makePartitioner(spec SchemeSpec) (rdd.Partitioner, bool) {
	if spec.Scheme == rdd.SchemeRange {
		return rdd.NewRangePartitionerFromSample(spec.NumPartitions, nil), true
	}
	return rdd.NewHashPartitioner(spec.NumPartitions), false
}

// retuneStageInput points every tunable input shuffle of st at one shared
// new partitioner (shared instance => co-partitioned inputs for joins).
func (s *Scheduler) retuneStageInput(target *rdd.RDD, st *Stage, spec SchemeSpec) {
	part, wantRange := makePartitioner(spec)
	for _, dep := range st.InDeps {
		if dep.Fixed && !spec.Override {
			continue
		}
		old := dep.Part
		dep.Part = part
		dep.WantRange = wantRange
		if old != nil {
			relinkPartitioner(target, old, part)
		}
	}
}

// insertRepartition splits a fixed stage: the RDD directly consuming the
// fixed input keeps its pinned partitioning and a new repartition shuffle is
// inserted between it and the rest of the stage (paper Algorithm 3's
// "repartition stage" for user-fixed schemes).
func (s *Scheduler) insertRepartition(target *rdd.RDD, st *Stage, spec SchemeSpec) {
	// Locate the head RDD of the stage: the one owning the fixed input dep
	// (or the source itself for source stages).
	var head *rdd.RDD
	walkNarrow(st.Final, func(r *rdd.RDD) {
		if head != nil {
			return
		}
		if len(st.InDeps) > 0 {
			for _, d := range r.Deps {
				if sd, ok := d.(*rdd.ShuffleDep); ok {
					for _, in := range st.InDeps {
						if sd == in {
							head = r
						}
					}
				}
			}
		} else if r.Gen != nil {
			head = r
		}
	})
	if head == nil || head == target || head == st.Final && st.IsResult {
		return
	}
	part, wantRange := makePartitioner(spec)
	rep := head.Repartition(part.NumPartitions())
	repDep := rep.Deps[0].(*rdd.ShuffleDep)
	repDep.Part = part
	repDep.WantRange = wantRange
	repDep.Fixed = true // the optimizer chose it; don't retune it again
	rep.Part = part

	// Rewire all one-to-one narrow consumers and downstream shuffles of head
	// (other than rep's own dependency) to read from rep.
	for _, r := range target.Lineage() {
		if r == rep {
			continue
		}
		for _, d := range r.Deps {
			switch dep := d.(type) {
			case *rdd.NarrowDep:
				if dep.P == head {
					dep.P = rep
				}
			case *rdd.ShuffleDep:
				if dep.P == head && dep != repDep {
					dep.P = rep
				}
			}
		}
	}
	rdd.PropagateCounts(target)
}
