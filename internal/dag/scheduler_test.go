package dag

import (
	"errors"
	"testing"

	"chopper/internal/rdd"
)

// fakeRunner implements StageRunner over the local reference evaluator: map
// stages are recorded (their shuffles are computed lazily by the local
// runner at result time), so tests can assert the scheduler's planning
// behavior without the cluster engine.
type fakeRunner struct {
	local     *rdd.LocalRunner
	waves     [][]*Stage
	cachedOK  map[int]bool // rdd id -> CachedComplete answer
	waveErr   error
	resultErr error
}

func newFakeRunner() *fakeRunner {
	return &fakeRunner{local: rdd.NewLocalRunner(), cachedOK: map[int]bool{}}
}

func (f *fakeRunner) RunWave(stages []*Stage) error {
	f.waves = append(f.waves, stages)
	return f.waveErr
}

func (f *fakeRunner) RunResult(st *Stage, fn func(split int, rows []rdd.Row) (any, error)) ([]any, error) {
	if f.resultErr != nil {
		return nil, f.resultErr
	}
	return f.local.RunJob(st.Final, fn)
}

func (f *fakeRunner) Materialize(r *rdd.RDD, split int) ([]rdd.Row, error) {
	return f.local.Materialize(r, split)
}

func (f *fakeRunner) CachedComplete(r *rdd.RDD) bool { return f.cachedOK[r.ID] }

func pairGen(ctx *rdd.Context, rows, keys int) *rdd.RDD {
	return ctx.Generate("pg", 0, int64(rows)*24, func(split, total int) []rdd.Row {
		var out []rdd.Row
		for i := split; i < rows; i += total {
			out = append(out, rdd.Pair{K: i % keys, V: 1.0})
		}
		return out
	})
}

func TestSchedulerRunsJobAndAssignsIDs(t *testing.T) {
	ctx := rdd.NewContext(4)
	fr := newFakeRunner()
	s := NewScheduler(ctx, fr)

	var infos []StageInfo
	s.OnJob = func(in []StageInfo) { infos = in }

	red := pairGen(ctx, 40, 5).ReduceByKey(func(a, b any) any { return a.(float64) + b.(float64) }, 3)
	n, err := red.Count()
	if err != nil || n != 5 {
		t.Fatalf("count = %d err=%v", n, err)
	}
	if len(fr.waves) != 1 || len(fr.waves[0]) != 1 {
		t.Fatalf("expected one map wave: %v", fr.waves)
	}
	mapStage := fr.waves[0][0]
	if mapStage.OutDep == nil || mapStage.OutDep.ShuffleID == 0 {
		t.Fatalf("shuffle id not assigned")
	}
	if len(infos) != 2 || infos[0].ID != 0 || infos[1].ID != 1 {
		t.Fatalf("stage ids wrong: %+v", infos)
	}
	if s.StagesBuilt() != 2 {
		t.Fatalf("StagesBuilt = %d", s.StagesBuilt())
	}

	// A second job continues the global stage counter.
	if _, err := red.Count(); err != nil {
		t.Fatal(err)
	}
	if s.StagesBuilt() != 4 {
		t.Fatalf("global counter should continue: %d", s.StagesBuilt())
	}
}

func TestSchedulerWaveOrdering(t *testing.T) {
	ctx := rdd.NewContext(4)
	fr := newFakeRunner()
	s := NewScheduler(ctx, fr)
	_ = s

	left := pairGen(ctx, 30, 4).ReduceByKey(func(a, b any) any { return a }, 2)
	right := pairGen(ctx, 30, 4).ReduceByKey(func(a, b any) any { return a }, 2)
	j := left.Join(right, nil)
	if _, err := j.Count(); err != nil {
		t.Fatal(err)
	}
	if len(fr.waves) != 2 {
		t.Fatalf("join should need two waves, got %d", len(fr.waves))
	}
	if len(fr.waves[0]) != 2 || len(fr.waves[1]) != 2 {
		t.Fatalf("wave shapes wrong: %d, %d", len(fr.waves[0]), len(fr.waves[1]))
	}
	// Parents must be scheduled before children.
	for _, early := range fr.waves[0] {
		for _, late := range fr.waves[1] {
			for _, p := range late.Parents {
				if p == early {
					goto ok
				}
			}
		}
	}
	t.Fatalf("second wave should depend on the first")
ok:
}

func TestSchedulerPropagatesWaveError(t *testing.T) {
	ctx := rdd.NewContext(2)
	fr := newFakeRunner()
	fr.waveErr = errors.New("wave boom")
	NewScheduler(ctx, fr)
	red := pairGen(ctx, 10, 2).ReduceByKey(func(a, b any) any { return a }, 2)
	if _, err := red.Count(); err == nil {
		t.Fatalf("wave error should propagate")
	}
	fr2 := newFakeRunner()
	fr2.resultErr = errors.New("result boom")
	ctx2 := rdd.NewContext(2)
	NewScheduler(ctx2, fr2)
	if _, err := pairGen(ctx2, 10, 2).Count(); err == nil {
		t.Fatalf("result error should propagate")
	}
}

type mapCfg map[string]SchemeSpec

func (m mapCfg) Scheme(sig string) (SchemeSpec, bool) { s, ok := m[sig]; return s, ok }
func (m mapCfg) Refresh()                             {}

func TestSchedulerAppliesConfig(t *testing.T) {
	// Discover the reduce signature with a first run.
	ctx := rdd.NewContext(4)
	fr := newFakeRunner()
	s := NewScheduler(ctx, fr)
	var sig string
	s.OnJob = func(infos []StageInfo) { sig = infos[len(infos)-1].Signature }
	build := func(c *rdd.Context) *rdd.RDD {
		return pairGen(c, 40, 7).ReduceByKey(func(a, b any) any { return a.(float64) + b.(float64) }, 0)
	}
	if _, err := build(ctx).Count(); err != nil {
		t.Fatal(err)
	}

	ctx2 := rdd.NewContext(4)
	fr2 := newFakeRunner()
	s2 := NewScheduler(ctx2, fr2)
	s2.Configurator = mapCfg{sig: {Scheme: rdd.SchemeHash, NumPartitions: 9}}
	red := build(ctx2)
	if _, err := red.Count(); err != nil {
		t.Fatal(err)
	}
	if red.NumParts != 9 {
		t.Fatalf("config should retune the reduce stage: %d", red.NumParts)
	}
}

func TestSchedulerRejectsInvalidConfig(t *testing.T) {
	ctx := rdd.NewContext(4)
	fr := newFakeRunner()
	s := NewScheduler(ctx, fr)
	var sig string
	s.OnJob = func(infos []StageInfo) { sig = infos[0].Signature }
	src := pairGen(ctx, 10, 2)
	if _, err := src.Count(); err != nil {
		t.Fatal(err)
	}
	s.Configurator = mapCfg{sig: {Scheme: "bogus", NumPartitions: 5}}
	if _, err := src.Count(); err == nil {
		t.Fatalf("invalid scheme should fail the job")
	}
}

func TestSchedulerSkipsMaterializedCacheRetune(t *testing.T) {
	ctx := rdd.NewContext(4)
	fr := newFakeRunner()
	s := NewScheduler(ctx, fr)
	src := pairGen(ctx, 40, 5)
	cached := src.Map(func(r rdd.Row) rdd.Row { return r }).Cache()
	var sig string
	s.OnJob = func(infos []StageInfo) { sig = infos[0].Signature }
	if _, err := cached.Count(); err != nil {
		t.Fatal(err)
	}
	before := src.NumParts

	// Pretend the cache is resident; the configurator must not resplit.
	fr.cachedOK[cached.ID] = true
	s.Configurator = mapCfg{sig: {Scheme: rdd.SchemeHash, NumPartitions: before + 7}}
	if _, err := cached.Count(); err != nil {
		t.Fatal(err)
	}
	if src.NumParts != before {
		t.Fatalf("materialized cache should pin the source: %d -> %d", before, src.NumParts)
	}

	// Without residency the same config resplits.
	fr.cachedOK[cached.ID] = false
	if _, err := cached.Count(); err != nil {
		t.Fatal(err)
	}
	if src.NumParts != before+7 {
		t.Fatalf("tunable source should be resplit: %d", src.NumParts)
	}
}

func TestSchedulerPrunesCachedParentStages(t *testing.T) {
	ctx := rdd.NewContext(4)
	fr := newFakeRunner()
	NewScheduler(ctx, fr)
	agg := pairGen(ctx, 40, 5).
		ReduceByKey(func(a, b any) any { return a.(float64) + b.(float64) }, 3).Cache()
	if _, err := agg.Count(); err != nil {
		t.Fatal(err)
	}
	wavesBefore := len(fr.waves)

	// Residency declared: the next job over agg must skip its map stage.
	fr.cachedOK[agg.ID] = true
	if _, err := agg.MapValues(func(v any) any { return v }).Count(); err != nil {
		t.Fatal(err)
	}
	if len(fr.waves) != wavesBefore {
		t.Fatalf("cached parent stage should be pruned; extra waves ran: %d -> %d", wavesBefore, len(fr.waves))
	}
}

func TestSchedulerSamplesRangeBounds(t *testing.T) {
	ctx := rdd.NewContext(4)
	fr := newFakeRunner()
	NewScheduler(ctx, fr)
	sorted := pairGen(ctx, 60, 60).SortByKey(4)
	rows, err := sorted.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rdd.CompareKeys(rows[i-1].(rdd.Pair).K, rows[i].(rdd.Pair).K) > 0 {
			t.Fatalf("sortByKey output unsorted at %d", i)
		}
	}
	// The scheduler must have replaced the pending range partitioner.
	mapStage := fr.waves[0][0]
	rp, ok := mapStage.OutDep.Part.(*rdd.RangePartitioner)
	if !ok || len(rp.Bounds()) == 0 {
		t.Fatalf("range bounds not materialized: %T", mapStage.OutDep.Part)
	}
	if mapStage.OutDep.WantRange {
		t.Fatalf("WantRange should be cleared after sampling")
	}
}

func TestSchedulerInsertRepartitionViaConfig(t *testing.T) {
	ctx := rdd.NewContext(4)
	fr := newFakeRunner()
	s := NewScheduler(ctx, fr)
	var sigs []StageInfo
	s.OnJob = func(infos []StageInfo) { sigs = infos }
	build := func(c *rdd.Context) *rdd.RDD {
		return pairGen(c, 40, 7).
			ReduceByKeyPart(func(a, b any) any { return a.(float64) + b.(float64) }, rdd.NewHashPartitioner(5)).
			MapValues(func(v any) any { return v })
	}
	want, err := build(ctx).CollectPairsMap()
	if err != nil {
		t.Fatal(err)
	}
	fixedSig := sigs[len(sigs)-1].Signature
	baseStages := len(sigs)

	ctx2 := rdd.NewContext(4)
	fr2 := newFakeRunner()
	s2 := NewScheduler(ctx2, fr2)
	s2.OnJob = func(infos []StageInfo) { sigs = infos }
	s2.Configurator = mapCfg{fixedSig: {Scheme: rdd.SchemeHash, NumPartitions: 2, InsertRepartition: true}}
	red := build(ctx2)
	got, err := red.CollectPairsMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != baseStages+1 {
		t.Fatalf("a repartition stage should be inserted: %d vs %d", len(sigs), baseStages)
	}
	if red.NumParts != 2 {
		t.Fatalf("downstream should run at the inserted partitioning: %d", red.NumParts)
	}
	if len(got) != len(want) {
		t.Fatalf("insertion changed results: %d vs %d keys", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %v: %v != %v", k, got[k], v)
		}
	}
}

func TestSchedulerOverrideRetunesFixed(t *testing.T) {
	ctx := rdd.NewContext(4)
	fr := newFakeRunner()
	s := NewScheduler(ctx, fr)
	var sig string
	s.OnJob = func(infos []StageInfo) { sig = infos[len(infos)-1].Signature }
	red := pairGen(ctx, 30, 6).ReduceByKey(func(a, b any) any { return a }, 7)
	if _, err := red.Count(); err != nil {
		t.Fatal(err)
	}

	ctx2 := rdd.NewContext(4)
	fr2 := newFakeRunner()
	s2 := NewScheduler(ctx2, fr2)
	s2.Configurator = mapCfg{sig: {Scheme: rdd.SchemeHash, NumPartitions: 3, Override: true}}
	red2 := pairGen(ctx2, 30, 6).ReduceByKey(func(a, b any) any { return a }, 7)
	if _, err := red2.Count(); err != nil {
		t.Fatal(err)
	}
	if red2.NumParts != 3 {
		t.Fatalf("Override should retune even fixed stages: %d", red2.NumParts)
	}
}

func TestSchedulerInsertRepartitionAfterFixedSource(t *testing.T) {
	build := func(ctx *rdd.Context) *rdd.RDD {
		// Explicit split count pins the source (user-fixed).
		src := ctx.Generate("pinnedSrc", 4, 1000, func(split, total int) []rdd.Row {
			var out []rdd.Row
			for i := split; i < 40; i += total {
				out = append(out, rdd.Pair{K: i % 5, V: 1.0})
			}
			return out
		})
		return src.MapValues(func(v any) any { return v })
	}
	ctx := rdd.NewContext(4)
	fr := newFakeRunner()
	s := NewScheduler(ctx, fr)
	var sigs []StageInfo
	s.OnJob = func(infos []StageInfo) { sigs = infos }
	want, err := build(ctx).CollectPairsMap()
	if err != nil {
		t.Fatal(err)
	}
	if !sigs[0].Fixed {
		t.Fatalf("explicit-count source stage should be fixed")
	}
	srcSig := sigs[0].Signature
	baseStages := len(sigs)

	ctx2 := rdd.NewContext(4)
	fr2 := newFakeRunner()
	s2 := NewScheduler(ctx2, fr2)
	s2.OnJob = func(infos []StageInfo) { sigs = infos }
	s2.Configurator = mapCfg{srcSig: {Scheme: rdd.SchemeHash, NumPartitions: 9, InsertRepartition: true}}
	red := build(ctx2)
	got, err := red.CollectPairsMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != baseStages+1 {
		t.Fatalf("a repartition stage should be inserted after the fixed source: %d vs %d", len(sigs), baseStages)
	}
	if red.NumParts != 9 {
		t.Fatalf("downstream should follow the inserted partitioning: %d", red.NumParts)
	}
	if len(got) != len(want) {
		t.Fatalf("insertion changed results: %d vs %d keys", len(got), len(want))
	}
}

// retiringRunner records every live-shuffle set the scheduler hands to
// RetireShufflesExcept, so tests can pin the retirement contract.
type retiringRunner struct {
	*fakeRunner
	liveSets [][]int
}

func (r *retiringRunner) RetireShufflesExcept(live []int) {
	r.liveSets = append(r.liveSets, append([]int(nil), live...))
}

func TestSchedulerRetiresStaleShuffles(t *testing.T) {
	ctx := rdd.NewContext(4)
	rr := &retiringRunner{fakeRunner: newFakeRunner()}
	_ = NewScheduler(ctx, rr)

	sum := func(a, b any) any { return a.(float64) + b.(float64) }
	redA := pairGen(ctx, 40, 5).ReduceByKey(sum, 3)
	if _, err := redA.Count(); err != nil {
		t.Fatal(err)
	}
	if len(rr.liveSets) != 1 || len(rr.liveSets[0]) != 1 {
		t.Fatalf("job 1 live set = %v, want one assigned shuffle id", rr.liveSets)
	}
	idA := rr.liveSets[0][0]
	if idA <= 0 {
		t.Fatalf("live set must carry assigned ids, got %d", idA)
	}

	// A job over an unrelated lineage must not keep redA's shuffle live.
	redB := pairGen(ctx, 40, 7).ReduceByKey(sum, 3)
	if _, err := redB.Count(); err != nil {
		t.Fatal(err)
	}
	live2 := rr.liveSets[1]
	if len(live2) != 1 || live2[0] == idA {
		t.Fatalf("job 2 live set = %v, must hold only the new lineage's shuffle", live2)
	}
}

// TestSchedulerKeepsCachedFrontierShufflesLive pins the lineage-safety
// half of the retirement contract: when a producer stage is pruned for
// cache residency, its shuffle keeps the id of the job that ran it — and
// that id must stay in the live set, because a mid-job cache eviction
// recomputes straight through it.
func TestSchedulerKeepsCachedFrontierShufflesLive(t *testing.T) {
	ctx := rdd.NewContext(4)
	rr := &retiringRunner{fakeRunner: newFakeRunner()}
	NewScheduler(ctx, rr)

	agg := pairGen(ctx, 40, 5).
		ReduceByKey(func(a, b any) any { return a.(float64) + b.(float64) }, 3).Cache()
	if _, err := agg.Count(); err != nil {
		t.Fatal(err)
	}
	idAgg := rr.liveSets[0][0]

	// Residency declared: the producer stage is pruned, yet its shuffle id
	// must survive in the next job's live set.
	rr.cachedOK[agg.ID] = true
	if _, err := agg.MapValues(func(v any) any { return v }).Count(); err != nil {
		t.Fatal(err)
	}
	live2 := rr.liveSets[1]
	found := false
	for _, id := range live2 {
		if id == idAgg {
			found = true
		}
	}
	if !found {
		t.Fatalf("job 2 live set = %v, must keep pruned producer's shuffle %d for cache-loss recompute", live2, idAgg)
	}
}
