// Package dag implements the DAG scheduler: it turns RDD lineage graphs
// into stages split at shuffle boundaries (ShuffleMapStage / ResultStage),
// assigns stable stage signatures, applies CHOPPER's per-stage partitioning
// configuration (including repartition-phase insertion for user-fixed
// stages), and drives stage execution through a StageRunner.
package dag

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"chopper/internal/rdd"
)

// Stage is a set of pipelined tasks bounded by shuffle dependencies.
type Stage struct {
	// ID is assigned in topological submission order, continuing across
	// jobs of a workload (Spark's global stage counter).
	ID int

	// Final is the last RDD of the stage: for a shuffle map stage, the
	// map-side parent of OutDep; for the result stage, the action target.
	Final *rdd.RDD

	// OutDep is the shuffle this stage writes; nil for the result stage.
	OutDep *rdd.ShuffleDep

	// InDeps are the shuffle dependencies read by RDDs inside this stage.
	InDeps []*rdd.ShuffleDep

	// Parents are the stages producing InDeps, in InDeps order.
	Parents []*Stage

	// Signature identifies stages that invoke identical transformation
	// chains; iterative stages share a signature (paper Section III-A).
	Signature string

	IsResult bool
}

// NumTasks reports the task count (one per partition of Final).
func (s *Stage) NumTasks() int { return s.Final.NumParts }

// Name is a short human-readable label.
func (s *Stage) Name() string {
	if s.IsResult {
		return "result:" + s.Final.Op
	}
	return "map:" + s.Final.Op
}

// PartitionerName reports the scheme partitioning this stage's input:
// the first input shuffle's partitioner, or "input" for source stages.
func (s *Stage) PartitionerName() string {
	if len(s.InDeps) > 0 {
		return s.InDeps[0].Part.Name()
	}
	return "input"
}

// InShuffleIDs lists the shuffle ids this stage reads.
func (s *Stage) InShuffleIDs() []int {
	out := make([]int, len(s.InDeps))
	for i, d := range s.InDeps {
		out[i] = d.ShuffleID
	}
	return out
}

// Fixed reports whether the stage's partitioning is user-pinned: every input
// shuffle is fixed, or (for source stages) the source itself is pinned.
func (s *Stage) Fixed() bool {
	if len(s.InDeps) > 0 {
		for _, d := range s.InDeps {
			if !d.Fixed {
				return false
			}
		}
		return true
	}
	src := s.sourceRDD()
	return src != nil && src.Fixed
}

// sourceRDD finds the generator source in this stage's narrow chain, if any.
func (s *Stage) sourceRDD() *rdd.RDD {
	var found *rdd.RDD
	walkNarrow(s.Final, func(r *rdd.RDD) {
		if r.Gen != nil || (len(r.Deps) == 0 && r.Compute != nil) {
			found = r
		}
	})
	return found
}

// PinKey identifies the cached RDD (by its chain signature) whose
// partitioning this stage inherits, or "" when the stage is free. Stages
// sharing a PinKey have a partition dependency: once the cached RDD is
// materialized, their task counts are all determined by its partitioning,
// so Algorithm 3 groups them and assigns one scheme.
func (s *Stage) PinKey() string {
	key := ""
	walkNarrow(s.Final, func(r *rdd.RDD) {
		if r.Cached && key == "" {
			key = signature(r)
		}
	})
	return key
}

// IsJoinLike reports whether the stage contains a cogroup/join operator —
// the grouping trigger of Algorithm 3.
func (s *Stage) IsJoinLike() bool {
	join := false
	walkNarrow(s.Final, func(r *rdd.RDD) {
		if r.Op == "cogroup" || r.Op == "join" {
			join = true
		}
	})
	return join
}

// walkNarrow visits every RDD reachable from r through narrow dependencies
// (the RDDs belonging to r's stage), including r itself.
func walkNarrow(r *rdd.RDD, visit func(*rdd.RDD)) {
	seen := map[int]bool{}
	var walk func(*rdd.RDD)
	walk = func(n *rdd.RDD) {
		if seen[n.ID] {
			return
		}
		seen[n.ID] = true
		visit(n)
		for _, d := range n.Deps {
			if nd, ok := d.(*rdd.NarrowDep); ok {
				walk(nd.P)
			}
		}
	}
	walk(r)
}

// BuildPlan constructs the stage graph for a job ending at target without
// executing anything: the result stage plus all stages in parent-before-child
// topological order, exactly as RunJob would build them (stage IDs are not
// assigned). External verifiers (internal/plan/verify) use it to inspect the
// plan the scheduler is about to run. warm has the same meaning as in
// buildStages. The lineage of target must be acyclic; callers that cannot
// guarantee that must check first (see verify.Plan), since a cyclic shuffle
// graph would recurse forever.
func BuildPlan(target *rdd.RDD, warm func(*rdd.RDD) bool) (*Stage, []*Stage) {
	return buildStages(target, warm)
}

// buildStages constructs the stage graph for a job ending at target.
// It returns the result stage and all stages in parent-before-child
// topological order (result last). Stage IDs are not assigned here.
// warm, when non-nil, reports whether a cached RDD is already materialized;
// signatures distinguish cold (computing) from warm (cache-reading) passes
// over the same chain, whose performance profiles are entirely different.
func buildStages(target *rdd.RDD, warm func(*rdd.RDD) bool) (*Stage, []*Stage) {
	byDep := map[*rdd.ShuffleDep]*Stage{}
	var topo []*Stage

	var stageFor func(final *rdd.RDD, out *rdd.ShuffleDep) *Stage
	stageFor = func(final *rdd.RDD, out *rdd.ShuffleDep) *Stage {
		st := &Stage{Final: final, OutDep: out, IsResult: out == nil}
		walkNarrow(final, func(r *rdd.RDD) {
			for _, d := range r.Deps {
				if sd, ok := d.(*rdd.ShuffleDep); ok {
					st.InDeps = append(st.InDeps, sd)
				}
			}
		})
		// Deterministic order of input deps (walk order depends on DFS;
		// sort by parent RDD id for stability).
		sort.Slice(st.InDeps, func(i, j int) bool {
			return st.InDeps[i].P.ID < st.InDeps[j].P.ID
		})
		for _, sd := range st.InDeps {
			parent, ok := byDep[sd]
			if !ok {
				parent = stageFor(sd.P, sd)
				byDep[sd] = parent
			}
			st.Parents = append(st.Parents, parent)
		}
		st.Signature = signatureWith(st.Final, warm)
		topo = append(topo, st)
		return st
	}
	result := stageFor(target, nil)
	return result, topo
}

// signature hashes the pure operator structure of a stage's narrow chain
// plus the shape of its inputs — stable across runs and cache states. Used
// for partition-dependency (pin) keys.
func signature(final *rdd.RDD) string { return signatureWith(final, nil) }

// signatureWith is signature with an optional warm-cache predicate: a
// cached RDD that is already materialized contributes a "cached[...]"
// marker instead of its compute chain, so a cold first pass and warm
// subsequent passes get distinct identifiers (their cost profiles differ
// by an order of magnitude), while iterations — all warm — still share one
// signature. CHOPPER's configuration tuples are keyed by this (Fig. 6).
func signatureWith(final *rdd.RDD, warm func(*rdd.RDD) bool) string {
	var expr func(r *rdd.RDD) string
	memo := map[int]string{}
	expr = func(r *rdd.RDD) string {
		if s, ok := memo[r.ID]; ok {
			return s
		}
		var parts []string
		for _, d := range r.Deps {
			switch dep := d.(type) {
			case *rdd.NarrowDep:
				parts = append(parts, expr(dep.P))
			case *rdd.ShuffleDep:
				kind := "shuffle"
				if dep.Agg != nil {
					kind = "shuffleAgg"
				}
				// Include the upstream chain's structure (not its data or
				// partitioning) so distinct pipelines ending in the same
				// operator get distinct signatures, while iterations of one
				// pipeline still collide as intended.
				up := sha256.Sum256([]byte(expr(dep.P)))
				parts = append(parts, kind+":"+hex.EncodeToString(up[:3]))
			}
		}
		s := r.Op + "(" + strings.Join(parts, ",") + ")"
		if r.Cached && warm != nil && warm(r) {
			sum := sha256.Sum256([]byte(s))
			s = "cached[" + hex.EncodeToString(sum[:3]) + "]"
		}
		memo[r.ID] = s
		return s
	}
	sum := sha256.Sum256([]byte(expr(final)))
	return hex.EncodeToString(sum[:6])
}

// Waves groups the non-result stages into dependency waves: every stage in
// wave k has all parents in waves < k. Within a wave, order is by build
// order (deterministic).
func Waves(topo []*Stage) [][]*Stage {
	done := map[*Stage]bool{}
	var waves [][]*Stage
	remaining := make([]*Stage, 0, len(topo))
	for _, st := range topo {
		if !st.IsResult {
			remaining = append(remaining, st)
		}
	}
	for len(remaining) > 0 {
		var wave, rest []*Stage
		for _, st := range remaining {
			ready := true
			for _, p := range st.Parents {
				if !done[p] {
					ready = false
					break
				}
			}
			if ready {
				wave = append(wave, st)
			} else {
				rest = append(rest, st)
			}
		}
		if len(wave) == 0 {
			panic("dag: dependency cycle among stages")
		}
		for _, st := range wave {
			done[st] = true
		}
		waves = append(waves, wave)
		remaining = rest
	}
	return waves
}

// String renders a stage for logs.
func (s *Stage) String() string {
	return fmt.Sprintf("Stage(%d %s sig=%s tasks=%d)", s.ID, s.Name(), s.Signature, s.NumTasks())
}
