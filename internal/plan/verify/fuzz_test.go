package verify_test

import (
	"testing"

	"chopper/internal/plan/verify"
	"chopper/internal/rdd"
)

// FuzzPlanInvariants drives the public RDD API from fuzz input to build
// arbitrary (but well-formed) lineage DAGs and asserts the verifier accepts
// every plan the API can express: the invariants must hold by construction,
// so any finding here is a verifier false positive or an API bug.
func FuzzPlanInvariants(f *testing.F) {
	f.Add([]byte{4, 0, 2, 8})
	f.Add([]byte{2, 4, 3, 5, 1})
	f.Add([]byte{8, 2, 16, 4, 2, 0, 3, 6})
	f.Add([]byte{1, 5, 3, 2, 200, 4, 1, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		lim := verify.DefaultLimits(nil)
		ctx := rdd.NewContext(4)
		parts := int(data[0])%32 + 1
		r := pairSource(ctx, "fuzz", parts, 1e9)

		// Remaining bytes are op codes; ops needing a partition count consume
		// the following byte. Counts are clamped into the verifier's budget —
		// the API contract the scheduler also honors.
		count := func(i int) int {
			if i >= len(data) {
				return 2
			}
			n := int(data[i])%lim.MaxPartitions + 1
			return n
		}
		ops := 0
		for i := 1; i < len(data) && ops < 12; i++ {
			ops++
			switch data[i] % 6 {
			case 0:
				r = r.MapValues(func(v any) any { return v })
			case 1:
				r = r.Filter(func(row rdd.Row) bool { return true })
			case 2:
				i++
				r = r.ReduceByKey(add, count(i))
			case 3:
				i++
				r = r.SortByKey(count(i))
			case 4:
				i++
				other := pairSource(ctx, "side", int(data[0])%16+1, 1e8).
					ReduceByKey(add, count(i))
				r = r.Join(other, nil)
			case 5:
				i++
				r = r.Repartition(count(i))
			}
		}

		if vs := verify.Plan(r, nil, lim); len(vs) > 0 {
			t.Fatalf("verifier rejected an API-built plan (input %v): %v", data, vs)
		}
	})
}
