package verify

import (
	"testing"

	"chopper/internal/exec"
)

// The verifier must not import the execution engine (it runs inside the
// scheduler, below exec in the dependency order), so it mirrors the storage
// fraction as a local constant. This test is the sync guarantee.
func TestStorageFractionMirrorsEngine(t *testing.T) {
	if storageFraction != exec.StorageFraction {
		t.Fatalf("verify.storageFraction = %v, exec.StorageFraction = %v; update the mirror",
			storageFraction, exec.StorageFraction)
	}
}
