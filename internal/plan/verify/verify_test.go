package verify_test

import (
	"strings"
	"testing"

	"chopper/internal/cluster"
	"chopper/internal/dag"
	"chopper/internal/plan/verify"
	"chopper/internal/rdd"
)

func add(a, b any) any { return a.(float64) + b.(float64) }

// pairSource builds a re-splittable keyed source of logicalBytes over n parts.
func pairSource(ctx *rdd.Context, name string, n int, logicalBytes int64) *rdd.RDD {
	return ctx.Generate(name, n, logicalBytes, func(split, total int) []rdd.Row {
		return []rdd.Row{rdd.Pair{K: split, V: 1.0}, rdd.Pair{K: split + total, V: 2.0}}
	})
}

// checks extracts the set of violated check names.
func checks(vs []verify.Violation) map[string]int {
	out := map[string]int{}
	for _, v := range vs {
		out[v.Check]++
	}
	return out
}

// wantCheck asserts at least one violation of the named check and no panic-y
// empty results.
func wantCheck(t *testing.T, vs []verify.Violation, name string) {
	t.Helper()
	if len(vs) == 0 {
		t.Fatalf("expected %q violation, verifier accepted the plan", name)
	}
	if checks(vs)[name] == 0 {
		t.Fatalf("expected %q violation, got %v", name, vs)
	}
}

// TestAcceptsRealPlans runs the verifier over plans built through the public
// RDD API — the shapes the built-in workloads produce — and expects silence.
func TestAcceptsRealPlans(t *testing.T) {
	lim := verify.DefaultLimits(nil)
	ctx := rdd.NewContext(4)

	plans := map[string]*rdd.RDD{
		"map-reduce": pairSource(ctx, "a", 4, 1e9).
			MapValues(func(v any) any { return v.(float64) * 2 }).
			ReduceByKey(add, 8),
		"join": pairSource(ctx, "b", 4, 1e9).
			Join(pairSource(ctx, "c", 4, 1e9), nil).
			ReduceByKey(func(a, b any) any { return a }, 6),
		"sort": pairSource(ctx, "d", 4, 1e9).SortByKey(4),
		"copartitioned-join": func() *rdd.RDD {
			p := rdd.NewHashPartitioner(6)
			l := pairSource(ctx, "e", 4, 1e9).ReduceByKeyPart(add, p)
			r := pairSource(ctx, "f", 4, 1e9).ReduceByKeyPart(add, p)
			return l.Join(r, p)
		}(),
	}
	for name, final := range plans {
		if vs := verify.Plan(final, nil, lim); len(vs) > 0 {
			t.Errorf("%s: clean plan rejected: %v", name, vs)
		}
	}
}

// TestRejectsCyclicLineage corrupts an RDD graph with a back edge; the
// verifier must report it without building stages (which would not
// terminate).
func TestRejectsCyclicLineage(t *testing.T) {
	ctx := rdd.NewContext(4)
	a := pairSource(ctx, "a", 4, 1e9)
	b := a.MapValues(func(v any) any { return v })
	a.Deps = append(a.Deps, &rdd.NarrowDep{P: b}) // cycle: a -> b -> a

	wantCheck(t, verify.Plan(b, nil, verify.DefaultLimits(nil)), "acyclic")
}

// TestRejectsCyclicStageGraph hand-builds two stages that claim each other
// as parents — a graph dag.buildStages can never emit.
func TestRejectsCyclicStageGraph(t *testing.T) {
	ctx := rdd.NewContext(2)
	r := pairSource(ctx, "a", 2, 1e6)
	dep := &rdd.ShuffleDep{P: r, Part: rdd.NewHashPartitioner(2)}
	s1 := &dag.Stage{Final: r, OutDep: dep, Signature: "s1"}
	s2 := &dag.Stage{Final: r, Signature: "s2", IsResult: true}
	s1.Parents = []*dag.Stage{s2}
	s1.InDeps = []*rdd.ShuffleDep{dep}
	s2.Parents = []*dag.Stage{s1}
	s2.InDeps = []*rdd.ShuffleDep{dep}

	wantCheck(t, verify.Stages(s2, []*dag.Stage{s1, s2}, verify.DefaultLimits(nil)), "acyclic")
}

// TestRejectsMisPartitionedJoin builds a real cogroup and then swaps one
// input shuffle's partitioner for a foreign one — the co-partitioning bug
// class the verifier exists for.
func TestRejectsMisPartitionedJoin(t *testing.T) {
	ctx := rdd.NewContext(4)
	a := pairSource(ctx, "a", 4, 1e9)
	b := pairSource(ctx, "b", 4, 1e9)
	j := a.Join(b, nil)

	// Join is a narrow child of the cogroup node.
	cg := j.Deps[0].(*rdd.NarrowDep).P
	if cg.Op != "cogroup" {
		t.Fatalf("expected cogroup parent, got %q", cg.Op)
	}
	corrupted := false
	for _, d := range cg.Deps {
		if sd, ok := d.(*rdd.ShuffleDep); ok {
			sd.Part = rdd.NewHashPartitioner(cg.NumParts + 3)
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatal("no shuffle dep to corrupt")
	}
	wantCheck(t, verify.Plan(j, nil, verify.DefaultLimits(nil)), "copartition")
}

// TestRejectsOverBudgetPartitions covers both bounds: a partition too large
// for the executor storage pool, and a partition count beyond the limit.
func TestRejectsOverBudgetPartitions(t *testing.T) {
	lim := verify.DefaultLimits(cluster.PaperCluster())

	t.Run("bytes", func(t *testing.T) {
		ctx := rdd.NewContext(2)
		// 2 TB over 2 partitions: 1 TB per partition dwarfs the 24 GB pool.
		huge := pairSource(ctx, "huge", 2, 2e12).
			MapValues(func(v any) any { return v })
		wantCheck(t, verify.Plan(huge, nil, lim), "partition-bounds")
	})

	t.Run("count", func(t *testing.T) {
		ctx := rdd.NewContext(2)
		wide := pairSource(ctx, "wide", 2, 1e9).ReduceByKey(add, lim.MaxPartitions+1)
		wantCheck(t, verify.Plan(wide, nil, lim), "partition-bounds")
	})
}

// TestRejectsBadRangeBounds feeds the verifier range partitioners with
// unsorted and mutually incomparable bounds (states the sampling constructor
// can never produce, but a buggy configurator could).
func TestRejectsBadRangeBounds(t *testing.T) {
	build := func(p rdd.Partitioner) *rdd.RDD {
		ctx := rdd.NewContext(4)
		src := pairSource(ctx, "a", 4, 1e9)
		return src.ReduceByKeyPart(add, p)
	}

	t.Run("unsorted", func(t *testing.T) {
		p := rdd.NewRangePartitionerWithBounds(4, []any{3.0, 1.0, 2.0})
		vs := verify.Plan(build(p), nil, verify.DefaultLimits(nil))
		wantCheck(t, vs, "partitioner-compat")
	})

	t.Run("mixed-key-types", func(t *testing.T) {
		p := rdd.NewRangePartitionerWithBounds(3, []any{1.0, "x"})
		vs := verify.Plan(build(p), nil, verify.DefaultLimits(nil))
		wantCheck(t, vs, "partitioner-compat")
	})

	t.Run("sorted-is-clean", func(t *testing.T) {
		p := rdd.NewRangePartitionerWithBounds(4, []any{1.0, 2.0, 3.0})
		if vs := verify.Plan(build(p), nil, verify.DefaultLimits(nil)); len(vs) > 0 {
			t.Fatalf("sorted bounds rejected: %v", vs)
		}
	})
}

// TestRejectsPartitionCountMismatch desynchronizes an RDD from its shuffle
// partitioner — the invariant the scheduler maintains when retuning.
func TestRejectsPartitionCountMismatch(t *testing.T) {
	ctx := rdd.NewContext(4)
	red := pairSource(ctx, "a", 4, 1e9).ReduceByKey(add, 8)
	red.NumParts = 5 // scheduler would have kept this equal to Part's count

	wantCheck(t, verify.Plan(red, nil, verify.DefaultLimits(nil)), "partitioner-compat")
}

// TestErrorAndHooks covers the reporting surface: Error formatting, the
// strict hook aborting, and the observing hook collecting without aborting.
func TestErrorAndHooks(t *testing.T) {
	if err := verify.Error(nil); err != nil {
		t.Fatalf("Error(nil) = %v", err)
	}
	vs := []verify.Violation{{Check: "acyclic", Stage: "map:x sig=ab", Msg: "boom"}}
	err := verify.Error(vs)
	if err == nil || !strings.Contains(err.Error(), "acyclic") {
		t.Fatalf("Error(vs) = %v", err)
	}

	ctx := rdd.NewContext(4)
	bad := pairSource(ctx, "a", 4, 1e9).ReduceByKey(add, 8)
	bad.NumParts = 5
	result, topo := dag.BuildPlan(bad, nil)
	lim := verify.DefaultLimits(nil)

	if err := verify.Hook(lim)(result, topo); err == nil {
		t.Fatal("strict hook accepted a bad plan")
	}
	var seen []verify.Violation
	if err := verify.ObservingHook(lim, func(vs []verify.Violation) { seen = vs })(result, topo); err != nil {
		t.Fatalf("observing hook aborted: %v", err)
	}
	if len(seen) == 0 {
		t.Fatal("observing hook reported nothing")
	}

	good := pairSource(ctx, "b", 4, 1e9).ReduceByKey(add, 8)
	result, topo = dag.BuildPlan(good, nil)
	if err := verify.Hook(lim)(result, topo); err != nil {
		t.Fatalf("strict hook rejected a clean plan: %v", err)
	}
}

// TestDefaultLimits pins the derivation from the topology (paper Section
// III: partitions must fit the storage pool of one executor).
func TestDefaultLimits(t *testing.T) {
	lim := verify.DefaultLimits(nil)
	if lim.MaxPartitions != 2000 {
		t.Errorf("nil topo MaxPartitions = %d, want 2000", lim.MaxPartitions)
	}
	topo := cluster.PaperCluster()
	lim = verify.DefaultLimits(topo)
	if lim.MaxPartitionBytes <= 0 {
		t.Errorf("MaxPartitionBytes = %d, want > 0", lim.MaxPartitionBytes)
	}
	if min := int64(1e9); lim.MaxPartitionBytes < min {
		t.Errorf("MaxPartitionBytes = %d, implausibly small", lim.MaxPartitionBytes)
	}
}
