// Package verify is the plan-IR invariant checker of chopperverify: a
// static analysis over the stage graphs the DAG scheduler builds from RDD
// lineage. CHOPPER's optimizer rewrites partitioners, counts and even the
// graph itself (repartition insertion) between jobs; each rewrite must
// preserve the structural invariants the paper's algorithms assume. The
// checker asserts, for every plan:
//
//	acyclic            — the RDD lineage and the stage graph contain no cycle
//	stage-boundary     — stages split exactly at wide (shuffle) dependencies:
//	                     a stage's InDeps are precisely the shuffle deps
//	                     reachable through its narrow chain, and each parent
//	                     stage produces exactly the dep it is linked through
//	copartition        — every cogroup/join consumes all of its inputs under
//	                     one partitioner identity and one partition count
//	                     (paper Section III-C)
//	partition-bounds   — partition counts are positive, below the configured
//	                     maximum, and estimated per-partition bytes fit the
//	                     executor storage pool (paper Section III memory
//	                     bounds)
//	partitioner-compat — every shuffle has a usable partitioner whose count
//	                     matches its consumer, range shuffles carry range
//	                     partitioners, and range bounds are sorted and
//	                     mutually comparable key types
//
// The checks are pure functions over the plan: nothing executes and nothing
// is mutated, so the scheduler can run them on every job (Scheduler.Verify)
// at negligible cost.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"chopper/internal/cluster"
	"chopper/internal/dag"
	"chopper/internal/rdd"
)

// Violation is one invariant breach found in a plan.
type Violation struct {
	// Check names the violated invariant (the list in the package comment).
	Check string
	// Stage labels the offending stage ("map:reduceByKey sig=ab12cd") or the
	// offending RDD for pre-stage checks.
	Stage string
	// Msg explains the breach.
	Msg string
}

// String renders the violation for logs and errors.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s: %s", v.Check, v.Stage, v.Msg)
}

// Limits bounds the partition-count check (paper Section III: partition
// sizes must respect per-node memory).
type Limits struct {
	// MaxPartitions caps any RDD's partition count. Zero disables the check.
	MaxPartitions int
	// MaxPartitionBytes caps the estimated logical bytes of one partition.
	// Zero disables the check.
	MaxPartitionBytes int64
}

// storageFraction mirrors exec.StorageFraction (kept in sync by a test in
// this package; verify must not import the execution engine).
const storageFraction = 0.6

// DefaultLimits derives limits from a cluster topology: a partition must fit
// the executor storage pool (ExecutorMemGB x storage fraction — a larger one
// could never be cached or joined in memory), and the partition count may
// not exceed 100 tasks per core (beyond the paper's densest 2000-partition
// sweeps, where per-task overhead already dominates).
func DefaultLimits(topo *cluster.Topology) Limits {
	maxParts := 2000
	if topo != nil {
		if n := 100 * topo.TotalWorkerCores(); n > maxParts {
			maxParts = n
		}
	}
	return Limits{
		MaxPartitions:     maxParts,
		MaxPartitionBytes: int64(cluster.ExecutorMemGB * storageFraction * 1e9),
	}
}

// Plan verifies the full job plan for an action target: lineage acyclicity
// first (a cyclic lineage cannot even be staged), then every stage-graph
// invariant. warm has the dag.BuildPlan meaning (nil is fine).
func Plan(final *rdd.RDD, warm func(*rdd.RDD) bool, lim Limits) []Violation {
	if vs := lineageCycles(final); len(vs) > 0 {
		return vs
	}
	result, topo := dag.BuildPlan(final, warm)
	return Stages(result, topo, lim)
}

// Stages verifies an already-built stage graph (result plus topological
// order, as produced by dag.BuildPlan or handed to Scheduler.Verify).
func Stages(result *dag.Stage, topo []*dag.Stage, lim Limits) []Violation {
	var out []Violation
	// RDD-level cycles first: everything below walks lineage and would not
	// terminate predictably on a cyclic graph.
	seenRDD := map[int]bool{}
	for _, st := range topo {
		if vs := lineageCycles(st.Final); len(vs) > 0 {
			return vs
		}
		for _, r := range st.Final.Lineage() {
			seenRDD[r.ID] = true
		}
	}
	if vs := stageCycles(topo); len(vs) > 0 {
		return vs
	}
	out = append(out, checkResult(result, topo)...)
	for _, st := range topo {
		out = append(out, checkBoundaries(st)...)
	}
	out = append(out, checkRDDs(topo, lim)...)
	return out
}

// stageLabel names a stage in violations (IDs are unassigned at verify
// time, so the signature identifies it).
func stageLabel(st *dag.Stage) string {
	return fmt.Sprintf("%s sig=%s", st.Name(), st.Signature)
}

func rddLabel(r *rdd.RDD) string {
	return fmt.Sprintf("rdd %d (%s)", r.ID, r.Op)
}

// lineageCycles detects cycles in the RDD dependency graph via a DFS with a
// recursion stack.
func lineageCycles(final *rdd.RDD) []Violation {
	const (
		visiting = 1
		done     = 2
	)
	state := map[int]int{}
	var out []Violation
	var walk func(r *rdd.RDD)
	walk = func(r *rdd.RDD) {
		switch state[r.ID] {
		case done:
			return
		case visiting:
			out = append(out, Violation{
				Check: "acyclic",
				Stage: rddLabel(r),
				Msg:   "RDD lineage contains a dependency cycle",
			})
			return
		}
		state[r.ID] = visiting
		for _, d := range r.Deps {
			walk(d.Parent())
		}
		state[r.ID] = done
	}
	walk(final)
	return out
}

// stageCycles detects cycles among stage parent links.
func stageCycles(topo []*dag.Stage) []Violation {
	const (
		visiting = 1
		done     = 2
	)
	state := map[*dag.Stage]int{}
	var out []Violation
	var walk func(st *dag.Stage)
	walk = func(st *dag.Stage) {
		switch state[st] {
		case done:
			return
		case visiting:
			out = append(out, Violation{
				Check: "acyclic",
				Stage: stageLabel(st),
				Msg:   "stage graph contains a dependency cycle",
			})
			return
		}
		state[st] = visiting
		for _, p := range st.Parents {
			walk(p)
		}
		state[st] = done
	}
	for _, st := range topo {
		walk(st)
	}
	return out
}

// checkResult asserts exactly one result stage, which is the declared one.
func checkResult(result *dag.Stage, topo []*dag.Stage) []Violation {
	var out []Violation
	results := 0
	seen := false
	for _, st := range topo {
		if st.IsResult {
			results++
		}
		if st == result {
			seen = true
		}
		if st.IsResult != (st.OutDep == nil) {
			out = append(out, Violation{
				Check: "stage-boundary",
				Stage: stageLabel(st),
				Msg:   "result stages must have no output shuffle and map stages exactly one",
			})
		}
	}
	if results != 1 || !seen || !result.IsResult {
		out = append(out, Violation{
			Check: "stage-boundary",
			Stage: stageLabel(result),
			Msg:   fmt.Sprintf("plan must contain exactly one result stage (found %d)", results),
		})
	}
	return out
}

// narrowShuffleDeps collects the shuffle dependencies reachable from final
// through narrow dependencies only — the set that defines the stage's true
// input boundary.
func narrowShuffleDeps(final *rdd.RDD) []*rdd.ShuffleDep {
	var out []*rdd.ShuffleDep
	seen := map[int]bool{}
	var walk func(r *rdd.RDD)
	walk = func(r *rdd.RDD) {
		if seen[r.ID] {
			return
		}
		seen[r.ID] = true
		for _, d := range r.Deps {
			switch dep := d.(type) {
			case *rdd.NarrowDep:
				walk(dep.P)
			case *rdd.ShuffleDep:
				out = append(out, dep)
			}
		}
	}
	walk(final)
	return out
}

// checkBoundaries asserts the stage is bounded exactly by its wide deps:
// InDeps is precisely the narrow-reachable shuffle-dep set, each parent
// stage produces the dep it is linked through, and a map stage's output
// shuffle reads the stage's own final RDD.
func checkBoundaries(st *dag.Stage) []Violation {
	var out []Violation
	label := stageLabel(st)

	reach := narrowShuffleDeps(st.Final)
	inSet := map[*rdd.ShuffleDep]bool{}
	for _, d := range st.InDeps {
		if inSet[d] {
			out = append(out, Violation{Check: "stage-boundary", Stage: label,
				Msg: "duplicate input shuffle dependency"})
		}
		inSet[d] = true
	}
	for _, d := range reach {
		if !inSet[d] {
			out = append(out, Violation{Check: "stage-boundary", Stage: label,
				Msg: fmt.Sprintf("shuffle dependency on %s is reachable through the narrow chain but missing from InDeps", rddLabel(d.P))})
		}
		delete(inSet, d)
	}
	for d := range inSet {
		out = append(out, Violation{Check: "stage-boundary", Stage: label,
			Msg: fmt.Sprintf("InDeps lists a shuffle dependency on %s that is not reachable through the narrow chain", rddLabel(d.P))})
	}

	if len(st.Parents) != len(st.InDeps) {
		out = append(out, Violation{Check: "stage-boundary", Stage: label,
			Msg: fmt.Sprintf("%d parent stages for %d input shuffles", len(st.Parents), len(st.InDeps))})
	} else {
		for i, p := range st.Parents {
			if p.OutDep != st.InDeps[i] {
				out = append(out, Violation{Check: "stage-boundary", Stage: label,
					Msg: fmt.Sprintf("parent %s does not produce input shuffle %d", stageLabel(p), i)})
			}
		}
	}
	if st.OutDep != nil && st.OutDep.P != st.Final {
		out = append(out, Violation{Check: "stage-boundary", Stage: label,
			Msg: "output shuffle does not read the stage's final RDD"})
	}
	return out
}

// checkRDDs runs the per-RDD invariants (co-partitioning, bounds,
// partitioner compatibility) over every RDD reachable from any stage.
func checkRDDs(topo []*dag.Stage, lim Limits) []Violation {
	var rdds []*rdd.RDD
	seen := map[int]bool{}
	for _, st := range topo {
		for _, r := range st.Final.Lineage() {
			if !seen[r.ID] {
				seen[r.ID] = true
				rdds = append(rdds, r)
			}
		}
	}
	sort.Slice(rdds, func(i, j int) bool { return rdds[i].ID < rdds[j].ID })

	est := estimateBytes(rdds)
	var out []Violation
	for _, r := range rdds {
		out = append(out, checkCoPartition(r)...)
		out = append(out, checkBounds(r, est[r.ID], lim)...)
		out = append(out, checkPartitioners(r)...)
	}
	return out
}

// checkCoPartition asserts the paper's join invariant: every input of a
// cogroup (and therefore of join and the outer joins built on it) arrives
// under the cogroup's own partitioner identity and partition count, whether
// it comes through a shuffle or a co-partitioned narrow dependency.
func checkCoPartition(r *rdd.RDD) []Violation {
	if r.Op != "cogroup" {
		return nil
	}
	label := rddLabel(r)
	if r.Part == nil {
		return []Violation{{Check: "copartition", Stage: label,
			Msg: "cogroup without a partitioner"}}
	}
	var out []Violation
	for i, d := range r.Deps {
		switch dep := d.(type) {
		case *rdd.ShuffleDep:
			if dep.Part == nil {
				continue // reported by partitioner-compat
			}
			if dep.Part.Identity() != r.Part.Identity() {
				out = append(out, Violation{Check: "copartition", Stage: label,
					Msg: fmt.Sprintf("input %d is shuffled by a different partitioner than the cogroup's", i)})
			}
			if dep.Part.NumPartitions() != r.NumParts {
				out = append(out, Violation{Check: "copartition", Stage: label,
					Msg: fmt.Sprintf("input %d delivers %d partitions, cogroup has %d", i, dep.Part.NumPartitions(), r.NumParts)})
			}
		case *rdd.NarrowDep:
			p := dep.P
			if p.Part == nil || p.Part.Identity() != r.Part.Identity() {
				out = append(out, Violation{Check: "copartition", Stage: label,
					Msg: fmt.Sprintf("narrow input %d (%s) is not co-partitioned with the cogroup", i, p.Op)})
			} else if p.NumParts != r.NumParts {
				out = append(out, Violation{Check: "copartition", Stage: label,
					Msg: fmt.Sprintf("narrow input %d (%s) has %d partitions, cogroup has %d", i, p.Op, p.NumParts, r.NumParts)})
			}
		}
	}
	return out
}

// estimateBytes propagates logical-size estimates down the lineage: sources
// contribute SourceBytes, every derived RDD the sum of its parents. The
// estimate is deliberately conservative (filters and combines shrink data;
// the estimate does not), so the bounds check never under-reports.
func estimateBytes(rdds []*rdd.RDD) map[int]int64 {
	memo := map[int]int64{}
	var est func(r *rdd.RDD) int64
	est = func(r *rdd.RDD) int64 {
		if b, ok := memo[r.ID]; ok {
			return b
		}
		memo[r.ID] = 0 // cycle guard; real cycles are caught earlier
		var b int64
		if len(r.Deps) == 0 {
			b = r.SourceBytes
		}
		for _, d := range r.Deps {
			b += est(d.Parent())
		}
		memo[r.ID] = b
		return b
	}
	for _, r := range rdds {
		est(r)
	}
	return memo
}

// checkBounds asserts positive, capped partition counts and per-partition
// estimated bytes within the executor storage pool.
func checkBounds(r *rdd.RDD, estBytes int64, lim Limits) []Violation {
	label := rddLabel(r)
	if r.NumParts <= 0 {
		return []Violation{{Check: "partition-bounds", Stage: label,
			Msg: fmt.Sprintf("non-positive partition count %d", r.NumParts)}}
	}
	var out []Violation
	if lim.MaxPartitions > 0 && r.NumParts > lim.MaxPartitions {
		out = append(out, Violation{Check: "partition-bounds", Stage: label,
			Msg: fmt.Sprintf("%d partitions exceeds the configured maximum %d", r.NumParts, lim.MaxPartitions)})
	}
	if lim.MaxPartitionBytes > 0 && estBytes > 0 {
		per := estBytes / int64(r.NumParts)
		if per > lim.MaxPartitionBytes {
			out = append(out, Violation{Check: "partition-bounds", Stage: label,
				Msg: fmt.Sprintf("estimated %d bytes per partition exceeds the %d-byte memory bound (%d bytes over %d partitions)",
					per, lim.MaxPartitionBytes, estBytes, r.NumParts)})
		}
	}
	return out
}

// checkPartitioners asserts shuffle partitioner sanity: present, positive,
// count-consistent with the consuming RDD, identity-consistent with the
// consumer's own partitioner, range-typed when range bounds were requested,
// and with sorted, comparable range bounds.
func checkPartitioners(r *rdd.RDD) []Violation {
	var out []Violation
	label := rddLabel(r)
	for i, d := range r.Deps {
		dep, ok := d.(*rdd.ShuffleDep)
		if !ok {
			continue
		}
		if dep.Part == nil {
			out = append(out, Violation{Check: "partitioner-compat", Stage: label,
				Msg: fmt.Sprintf("input shuffle %d has no partitioner", i)})
			continue
		}
		if dep.Part.NumPartitions() <= 0 {
			out = append(out, Violation{Check: "partitioner-compat", Stage: label,
				Msg: fmt.Sprintf("input shuffle %d has a non-positive partition count", i)})
			continue
		}
		if dep.Part.NumPartitions() != r.NumParts {
			out = append(out, Violation{Check: "partitioner-compat", Stage: label,
				Msg: fmt.Sprintf("input shuffle %d partitions into %d but the RDD has %d partitions (count propagation missed)",
					i, dep.Part.NumPartitions(), r.NumParts)})
		}
		if r.Part != nil && r.Part.Identity() != dep.Part.Identity() && r.Op != "cogroup" {
			// cogroup identity errors are reported by copartition with a
			// sharper message.
			out = append(out, Violation{Check: "partitioner-compat", Stage: label,
				Msg: fmt.Sprintf("RDD advertises a different partitioner than its input shuffle %d delivers", i)})
		}
		rp, isRange := dep.Part.(*rdd.RangePartitioner)
		if dep.WantRange && !isRange {
			out = append(out, Violation{Check: "partitioner-compat", Stage: label,
				Msg: fmt.Sprintf("input shuffle %d wants range bounds but carries a %s partitioner", i, dep.Part.Name())})
		}
		if isRange {
			out = append(out, checkRangeBounds(label, i, rp)...)
		}
	}
	return out
}

// checkRangeBounds asserts range bounds are mutually comparable (one key
// type) and sorted ascending. Empty bounds are legal: the scheduler samples
// them right before the map stage runs.
func checkRangeBounds(label string, depIdx int, rp *rdd.RangePartitioner) (out []Violation) {
	bounds := rp.Bounds()
	if len(bounds) == 0 {
		return nil
	}
	// CompareKeys panics on mixed or unsupported key types; that is exactly
	// the key-type incompatibility this check exists to report.
	defer func() {
		if rec := recover(); rec != nil {
			out = append(out, Violation{Check: "partitioner-compat", Stage: label,
				Msg: fmt.Sprintf("input shuffle %d has range bounds with incompatible key types: %v", depIdx, rec)})
		}
	}()
	for i := 1; i < len(bounds); i++ {
		if rdd.CompareKeys(bounds[i-1], bounds[i]) > 0 {
			out = append(out, Violation{Check: "partitioner-compat", Stage: label,
				Msg: fmt.Sprintf("input shuffle %d has unsorted range bounds (bound %d > bound %d)", depIdx, i-1, i)})
			return out
		}
	}
	return out
}

// Error bundles violations into one error for strict callers.
func Error(vs []Violation) error {
	if len(vs) == 0 {
		return nil
	}
	msgs := make([]string, len(vs))
	for i, v := range vs {
		msgs[i] = v.String()
	}
	return fmt.Errorf("plan verification failed:\n\t%s", strings.Join(msgs, "\n\t"))
}

// Hook returns a strict Scheduler.Verify implementation: any violation
// aborts the job with an error listing every breach. This is the default
// for sessions and tests.
func Hook(lim Limits) func(result *dag.Stage, topo []*dag.Stage) error {
	return func(result *dag.Stage, topo []*dag.Stage) error {
		return Error(Stages(result, topo, lim))
	}
}

// ObservingHook returns a Scheduler.Verify implementation that reports
// violations to observe and never aborts the job — the production mode
// (observe typically logs) and the collection mode of cmd/chopperverify.
func ObservingHook(lim Limits, observe func([]Violation)) func(result *dag.Stage, topo []*dag.Stage) error {
	return func(result *dag.Stage, topo []*dag.Stage) error {
		if vs := Stages(result, topo, lim); len(vs) > 0 && observe != nil {
			observe(vs)
		}
		return nil
	}
}
