package plan

import (
	"strings"
	"testing"

	"chopper/internal/rdd"
)

func pipeline() (*rdd.Context, *rdd.RDD) {
	ctx := rdd.NewContext(4)
	src := ctx.Generate("src", 0, 1000, func(split, total int) []rdd.Row {
		return []rdd.Row{rdd.Pair{K: split, V: 1.0}}
	})
	agg := src.Map(func(r rdd.Row) rdd.Row { return r }).
		ReduceByKey(func(a, b any) any { return a }, 3).
		Cache()
	other := ctx.Generate("other", 0, 500, func(split, total int) []rdd.Row {
		return []rdd.Row{rdd.Pair{K: split, V: "x"}}
	})
	return ctx, agg.Join(other, nil)
}

func TestTree(t *testing.T) {
	_, target := pipeline()
	out := Tree(target)
	for _, want := range []string{"join#", "cogroup#", "= reduceByKey", "- src#", "(cached)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree missing %q:\n%s", want, out)
		}
	}
	// Shuffle boundaries must be marked.
	if strings.Count(out, "= ") < 2 {
		t.Fatalf("expected at least two stage boundaries:\n%s", out)
	}
}

func TestTreeSharedSubgraph(t *testing.T) {
	ctx := rdd.NewContext(2)
	base := ctx.Parallelize([]rdd.Row{rdd.Pair{K: 1, V: 1.0}}, 1)
	self := base.Join(base, nil)
	out := Tree(self)
	if !strings.Contains(out, "(shared)") {
		t.Fatalf("self-join should show a shared sub-lineage:\n%s", out)
	}
}

func TestDOT(t *testing.T) {
	_, target := pipeline()
	dot := DOT(target, "demo")
	for _, want := range []string{"digraph \"demo\"", "rankdir=BT", "color=red", "shape=box", "shape=ellipse", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("dot missing %q:\n%s", want, dot)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Fatalf("dot not closed")
	}
	// Every node referenced by an edge must be declared.
	for _, line := range strings.Split(dot, "\n") {
		line = strings.TrimSpace(line)
		if strings.Contains(line, "->") {
			parts := strings.SplitN(line, "->", 2)
			from := strings.TrimSpace(parts[0])
			if !strings.Contains(dot, from+" [label=") {
				t.Fatalf("edge references undeclared node %q", from)
			}
		}
	}
}

func TestSummarize(t *testing.T) {
	_, target := pipeline()
	st := Summarize(target)
	if st.Sources != 2 {
		t.Fatalf("sources = %d, want 2", st.Sources)
	}
	// reduceByKey + two join-side shuffles.
	if st.Shuffles != 3 {
		t.Fatalf("shuffles = %d, want 3", st.Shuffles)
	}
	if st.Cached != 1 {
		t.Fatalf("cached = %d, want 1", st.Cached)
	}
	if st.RDDs < 6 || st.MaxDepth < 3 {
		t.Fatalf("stats implausible: %+v", st)
	}
}

func TestSummarizeNarrowChain(t *testing.T) {
	ctx := rdd.NewContext(2)
	r := ctx.Parallelize([]rdd.Row{1}, 1).
		Map(func(r rdd.Row) rdd.Row { return r }).
		Filter(func(rdd.Row) bool { return true })
	st := Summarize(r)
	if st.Shuffles != 0 || st.RDDs != 3 || st.MaxDepth != 2 {
		t.Fatalf("narrow chain stats wrong: %+v", st)
	}
}
