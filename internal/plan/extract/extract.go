// Package extract reconstructs a workload's RDD lineage and stage graphs
// statically: a symbolic evaluator interprets the workload's Run method
// (go/ast + go/types, loaded through the shared lint.Program cache) and
// replays every transformation against the real rdd API on a runner-less
// context. Closures are stubbed (transforms are lazy, so their bodies never
// execute), actions are intercepted instead of run, and loop bounds come
// from the live workload struct via reflection — so the extracted lineage
// allocates RDD IDs in exactly the program order the runtime would, and
// dag.BuildPlan over it yields stage graphs isomorphic to the ones the
// scheduler builds at run time.
//
// The point of the exercise is the drift gate (cmd/chopperplan,
// chopperverify -static): the statically extracted plans are checked
// against internal/plan/verify's invariants AND diffed against the plans a
// real run submits. A divergence ("plan drift") means the workload's
// control flow has grown beyond what the evaluator models — or that a code
// change silently altered the stage structure the paper's figures are
// keyed to — and fails CI either way.
package extract

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"reflect"

	"chopper/internal/dag"
	"chopper/internal/lint"
	"chopper/internal/plan/verify"
	"chopper/internal/rdd"
	"chopper/internal/workloads"
)

// Job is one action the symbolic evaluation reached: the action's method
// name, the lineage it would submit, and the stage plan dag.BuildPlan
// derives from that lineage (cold cache — structure is cache-independent,
// only signatures vary with warmth).
type Job struct {
	Action string
	Target *rdd.RDD
	Plan   *dag.Stage
	Topo   []*dag.Stage

	// Keys holds the statically inferred key/partitioning facts for every
	// lineage node of Target, sorted by RDD ID (creation order).
	Keys []KeyFacts
}

// Report is the result of symbolically extracting one workload.
type Report struct {
	Workload string
	Jobs     []Job
}

// Verify runs the plan-IR invariant checks over every extracted job's
// stage graph and returns the combined findings.
func (r *Report) Verify(lim verify.Limits) []verify.Violation {
	var out []verify.Violation
	for i, j := range r.Jobs {
		for _, v := range verify.Stages(j.Plan, j.Topo, lim) {
			v.Check = fmt.Sprintf("job%d/%s: %s", i, j.Action, v.Check)
			out = append(out, v)
		}
	}
	return out
}

// Extractor holds the parsed+type-checked workloads package.
type Extractor struct {
	pkg *lint.Package
}

// New loads the workloads package from the module containing dir.
func New(dir string) (*Extractor, error) {
	root, err := lint.FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	prog, err := lint.NewProgram(root)
	if err != nil {
		return nil, err
	}
	return NewFromProgram(prog)
}

// NewFromProgram builds an extractor on an existing shared Program, so
// tools that also run chopperlint rules type-check the package only once.
func NewFromProgram(prog *lint.Program) (*Extractor, error) {
	dir := filepath.Join(prog.Loader.ModRoot, "internal", "workloads")
	pkg, err := prog.Package(dir)
	if err != nil {
		return nil, fmt.Errorf("extract: loading workloads package: %w", err)
	}
	return &Extractor{pkg: pkg}, nil
}

// Extract symbolically evaluates w's Run method at the given logical input
// size and default parallelism. The workload value itself supplies every
// receiver field the evaluator reads (loop bounds, dataset shapes), so a
// shrunk instance extracts the plans of the shrunk run.
func (e *Extractor) Extract(w workloads.Workload, inputBytes int64, defaultParallelism int) (rep *Report, err error) {
	decl, err := e.runDecl(w)
	if err != nil {
		return nil, err
	}
	defer func() {
		// The evaluator deliberately panics on constructs it cannot model
		// (and the real rdd API panics on degenerate partition counts);
		// both become ordinary "unextractable" errors.
		if r := recover(); r != nil {
			rep = nil
			err = fmt.Errorf("extract: %s: %v", w.Name(), r)
		}
	}()

	ctx := rdd.NewContext(defaultParallelism)
	in := newInterp(e.pkg, decl, w, ctx, inputBytes)
	in.run()

	rep = &Report{Workload: w.Name()}
	cold := func(*rdd.RDD) bool { return false }
	for _, j := range in.jobs {
		rdd.PropagateCounts(j.target)
		plan, topo := dag.BuildPlan(j.target, cold)
		keys, err := in.keys.jobFacts(j.target)
		if err != nil {
			return nil, fmt.Errorf("extract: %s: %w", w.Name(), err)
		}
		rep.Jobs = append(rep.Jobs, Job{Action: j.action, Target: j.target, Plan: plan, Topo: topo, Keys: keys})
	}
	return rep, nil
}

// runDecl finds the Run method declaration for w's dynamic type.
func (e *Extractor) runDecl(w workloads.Workload) (*ast.FuncDecl, error) {
	t := reflect.TypeOf(w)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	want := t.Name()
	for _, f := range e.pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Run" || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			if recvTypeName(fd.Recv.List[0].Type) == want {
				return fd, nil
			}
		}
	}
	return nil, fmt.Errorf("extract: no Run method found for workload type %s", want)
}

// recvTypeName unwraps a receiver type expression to its base identifier.
func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	}
	return ""
}
