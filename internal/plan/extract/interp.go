package extract

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"

	"chopper/internal/lint"
	"chopper/internal/rdd"
)

// maxSteps bounds the total number of statements the evaluator executes, so
// a workload whose loop bounds explode (fuzzed field values) degenerates to
// an "unextractable" error rather than a hang.
const maxSteps = 200000

// symJob is one intercepted action.
type symJob struct {
	action string
	target *rdd.RDD
}

// interp symbolically executes one Run method. Values are modeled as
// "known" (a reflect.Value holding the real Go value — ints, strings, the
// context, partitioners, and genuine *rdd.RDD lineage nodes), "function
// literal" (stubbed on demand when passed to an rdd transform), or
// "unknown" (anything data-dependent: action results, driver-side math).
// Control flow executes concretely where conditions are known; unknown
// branches follow the policy in chooseBranch.
type interp struct {
	pkg   *lint.Package
	info  *types.Info
	fset  *token.FileSet
	ctx   *rdd.Context
	decl  *ast.FuncDecl
	w     any
	bytes int64

	jobs  []symJob
	keys  *keyTracker
	steps int
}

// val is one symbolic value.
type val struct {
	known bool
	isNil bool          // known, and the value is an untyped/interface nil
	rv    reflect.Value // valid iff known && !isNil
	lit   *ast.FuncLit  // a function literal, stubbed when passed to the rdd API
}

func unknown() val           { return val{} }
func knownNil() val          { return val{known: true, isNil: true} }
func known(v any) val        { return val{known: true, rv: reflect.ValueOf(v)} }
func knownRV(v reflect.Value) val {
	if !v.IsValid() {
		return knownNil()
	}
	return val{known: true, rv: v}
}

// scope is a lexical environment frame.
type scope struct {
	parent *scope
	vars   map[string]val
}

func (s *scope) lookup(name string) (val, bool) {
	for f := s; f != nil; f = f.parent {
		if v, ok := f.vars[name]; ok {
			return v, true
		}
	}
	return val{}, false
}

// set updates name in the frame that defines it, or defines it in the
// current frame (covers both := and = well enough for straight-line Go).
func (s *scope) set(name string, v val) {
	for f := s; f != nil; f = f.parent {
		if _, ok := f.vars[name]; ok {
			f.vars[name] = v
			return
		}
	}
	s.vars[name] = v
}

func (s *scope) define(name string, v val) { s.vars[name] = v }

func (s *scope) child() *scope { return &scope{parent: s, vars: map[string]val{}} }

// ctl is the statement-level control signal.
type ctl int

const (
	ctlNext ctl = iota
	ctlBreak
	ctlContinue
	ctlReturn
)

func newInterp(pkg *lint.Package, decl *ast.FuncDecl, w any, ctx *rdd.Context, inputBytes int64) *interp {
	in := &interp{
		pkg:   pkg,
		info:  pkg.Info,
		fset:  pkg.Fset,
		ctx:   ctx,
		decl:  decl,
		w:     w,
		bytes: inputBytes,
	}
	in.keys = newKeyTracker(in)
	return in
}

// bail aborts extraction with a positioned reason; recovered in Extract.
func (in *interp) bail(pos token.Pos, format string, args ...any) {
	where := ""
	if pos.IsValid() {
		where = in.fset.Position(pos).String() + ": "
	}
	panic(where + fmt.Sprintf(format, args...))
}

// run seeds the environment (receiver via reflection on the live workload
// value, the context, the input size) and executes the body.
func (in *interp) run() {
	env := &scope{vars: map[string]val{}}
	if recv := in.decl.Recv.List[0]; len(recv.Names) == 1 {
		env.define(recv.Names[0].Name, known(in.w))
	}
	params := in.decl.Type.Params.List
	if len(params) == 2 && len(params[0].Names) == 1 && len(params[1].Names) == 1 {
		env.define(params[0].Names[0].Name, known(in.ctx))
		env.define(params[1].Names[0].Name, known(in.bytes))
	} else {
		in.bail(in.decl.Pos(), "Run signature has unexpected parameter shape")
	}
	in.execBlock(in.decl.Body, env)
}

func (in *interp) step(pos token.Pos) {
	in.steps++
	if in.steps > maxSteps {
		in.bail(pos, "evaluation exceeded %d steps (runaway loop?)", maxSteps)
	}
}

// execBlock executes a block in a fresh child scope.
func (in *interp) execBlock(b *ast.BlockStmt, env *scope) ctl {
	inner := env.child()
	for _, st := range b.List {
		if c := in.execStmt(st, inner); c != ctlNext {
			return c
		}
	}
	return ctlNext
}

func (in *interp) execStmt(st ast.Stmt, env *scope) ctl {
	in.step(st.Pos())
	switch s := st.(type) {
	case *ast.AssignStmt:
		in.execAssign(s, env)
	case *ast.DeclStmt:
		in.execDecl(s, env)
	case *ast.ExprStmt:
		in.evalMulti(s.X, env)
	case *ast.IncDecStmt:
		in.execIncDec(s, env)
	case *ast.IfStmt:
		return in.execIf(s, env)
	case *ast.ForStmt:
		return in.execFor(s, env)
	case *ast.RangeStmt:
		return in.execRange(s, env)
	case *ast.ReturnStmt:
		in.checkReturn(s, env)
		return ctlReturn
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				in.bail(s.Pos(), "labeled break not modeled")
			}
			return ctlBreak
		case token.CONTINUE:
			if s.Label != nil {
				in.bail(s.Pos(), "labeled continue not modeled")
			}
			return ctlContinue
		default:
			in.bail(s.Pos(), "%s not modeled", s.Tok)
		}
	case *ast.BlockStmt:
		return in.execBlock(s, env)
	case *ast.EmptyStmt:
	default:
		in.bail(st.Pos(), "statement %T not modeled by the symbolic evaluator", st)
	}
	return ctlNext
}

// checkReturn sanity-checks a reached return: the evaluator steers around
// error paths, so reaching a return that constructs a non-nil error means
// the control-flow model went wrong — fail loudly instead of reporting a
// truncated plan as truth.
func (in *interp) checkReturn(s *ast.ReturnStmt, env *scope) {
	if len(s.Results) == 0 {
		return
	}
	last := s.Results[len(s.Results)-1]
	if t := in.info.TypeOf(last); t == nil || !types.Identical(t, types.Universe.Lookup("error").Type()) {
		return
	}
	if call, ok := ast.Unparen(last).(*ast.CallExpr); ok {
		if name := calleeFullName(in.info, call); name == "fmt.Errorf" || name == "errors.New" {
			in.bail(s.Pos(), "evaluation reached an error return (%s); control-flow model diverged", name)
		}
	}
}

func (in *interp) execAssign(s *ast.AssignStmt, env *scope) {
	var vals []val
	if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
		vals = in.evalMulti(s.Rhs[0], env)
		if len(vals) != len(s.Lhs) {
			in.bail(s.Pos(), "assignment arity mismatch: %d = %d", len(s.Lhs), len(vals))
		}
	} else {
		for i, r := range s.Rhs {
			if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
				// Compound assignment (+=, -=, ...): model as binary op.
				op := compoundOp(s.Tok)
				cur := in.evalExpr(s.Lhs[i], env)
				rhs := in.evalExpr(r, env)
				vals = append(vals, in.binop(s.Pos(), op, cur, rhs, in.info.TypeOf(s.Lhs[i])))
				continue
			}
			vals = append(vals, in.evalExpr(r, env))
		}
	}
	for i, l := range s.Lhs {
		switch lhs := ast.Unparen(l).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			if s.Tok == token.DEFINE {
				env.define(lhs.Name, vals[i])
			} else {
				env.set(lhs.Name, vals[i])
			}
		default:
			// Writes through selectors/indexes (res.Details[k] = v) mutate
			// driver-side data the plan never depends on; drop them.
		}
	}
}

func compoundOp(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	}
	return token.ILLEGAL
}

func (in *interp) execDecl(s *ast.DeclStmt, env *scope) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, sp := range gd.Specs {
		vs, ok := sp.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			v := unknown()
			if i < len(vs.Values) {
				v = in.evalExpr(vs.Values[i], env)
			}
			if name.Name != "_" {
				env.define(name.Name, v)
			}
		}
	}
}

func (in *interp) execIncDec(s *ast.IncDecStmt, env *scope) {
	id, ok := ast.Unparen(s.X).(*ast.Ident)
	if !ok {
		return
	}
	cur, ok := env.lookup(id.Name)
	if !ok || !cur.known || cur.isNil {
		env.set(id.Name, unknown())
		return
	}
	delta := int64(1)
	if s.Tok == token.DEC {
		delta = -1
	}
	switch cur.rv.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		nv := reflect.New(cur.rv.Type()).Elem()
		nv.SetInt(cur.rv.Int() + delta)
		env.set(id.Name, knownRV(nv))
	default:
		env.set(id.Name, unknown())
	}
}

func (in *interp) execIf(s *ast.IfStmt, env *scope) ctl {
	inner := env.child()
	if s.Init != nil {
		if c := in.execStmt(s.Init, inner); c != ctlNext {
			return c
		}
	}
	cond := in.evalExpr(s.Cond, inner)
	if cond.known && !cond.isNil && cond.rv.Kind() == reflect.Bool {
		if cond.rv.Bool() {
			return in.execBlock(s.Body, inner)
		}
		if s.Else != nil {
			return in.execStmt(s.Else, inner)
		}
		return ctlNext
	}
	return in.chooseBranch(s, inner)
}

// chooseBranch handles an if whose condition is data-dependent. Policy:
// prefer the branch that does not end in a return (these are almost always
// error guards around action results the evaluator cannot see); a branch
// free of rdd-API calls can be skipped outright; a data-dependent branch
// that builds lineage is beyond the model and aborts extraction.
func (in *interp) chooseBranch(s *ast.IfStmt, env *scope) ctl {
	bodyReturns := blockEndsInReturn(s.Body)
	elseReturns := false
	if s.Else != nil {
		if eb, ok := s.Else.(*ast.BlockStmt); ok {
			elseReturns = blockEndsInReturn(eb)
		}
	}
	switch {
	case bodyReturns && elseReturns:
		in.bail(s.Pos(), "data-dependent branch returns on both arms; cannot pick a path")
	case bodyReturns:
		if s.Else != nil {
			return in.execStmt(s.Else, env)
		}
		return ctlNext
	case elseReturns:
		return in.execBlock(s.Body, env)
	}
	// Neither branch returns: safe to skip only if no lineage would be
	// built either way.
	if !in.containsRDDOps(s.Body) && (s.Else == nil || !in.containsRDDOps(s.Else)) {
		return ctlNext
	}
	in.bail(s.Pos(), "data-dependent branch builds RDD lineage; cannot extract statically")
	return ctlNext
}

// blockEndsInReturn reports whether the block's last statement is a return
// (the shape of every error guard in the workloads).
func blockEndsInReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}

func (in *interp) execFor(s *ast.ForStmt, env *scope) ctl {
	inner := env.child()
	if s.Init != nil {
		if c := in.execStmt(s.Init, inner); c != ctlNext {
			return c
		}
	}
	for {
		in.step(s.Pos())
		if s.Cond != nil {
			cond := in.evalExpr(s.Cond, inner)
			if !cond.known || cond.isNil || cond.rv.Kind() != reflect.Bool {
				in.bail(s.Cond.Pos(), "loop condition is not statically known")
			}
			if !cond.rv.Bool() {
				return ctlNext
			}
		}
		switch in.execBlock(s.Body, inner) {
		case ctlBreak:
			return ctlNext
		case ctlReturn:
			return ctlReturn
		}
		if s.Post != nil {
			in.execStmt(s.Post, inner)
		}
	}
}

// execRange models range loops. A range whose body builds no lineage is
// driver-side bookkeeping and is skipped; a range over a statically known
// slice executes concretely; anything else aborts extraction.
func (in *interp) execRange(s *ast.RangeStmt, env *scope) ctl {
	if !in.containsRDDOps(s.Body) {
		return ctlNext
	}
	coll := in.evalExpr(s.X, env)
	if !coll.known || coll.isNil || (coll.rv.Kind() != reflect.Slice && coll.rv.Kind() != reflect.Array) {
		in.bail(s.Pos(), "range over data-dependent collection builds RDD lineage; cannot extract statically")
	}
	for i := 0; i < coll.rv.Len(); i++ {
		in.step(s.Pos())
		inner := env.child()
		if id, ok := s.Key.(*ast.Ident); ok && id.Name != "_" {
			inner.define(id.Name, known(int64(i)))
		}
		if s.Value != nil {
			if id, ok := s.Value.(*ast.Ident); ok && id.Name != "_" {
				inner.define(id.Name, knownRV(coll.rv.Index(i)))
			}
		}
		switch in.execBlock(s.Body, inner) {
		case ctlBreak:
			return ctlNext
		case ctlReturn:
			return ctlReturn
		}
	}
	return ctlNext
}

// containsRDDOps reports whether any call under n touches the rdd package
// (transform, action, context or constructor call). Used to decide whether
// skipping a data-dependent region could lose lineage.
func (in *interp) containsRDDOps(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if t := in.info.TypeOf(call.Fun); t != nil && typeMentionsRDD(t) {
			found = true
		}
		return true
	})
	return found
}

// typeMentionsRDD reports whether a callee's signature involves the rdd
// package (receiver-qualified method strings include it too).
func typeMentionsRDD(t types.Type) bool {
	sig, ok := t.(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil && typeIsRDDNamed(recv.Type()) {
		return true
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if typeIsRDDNamed(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

func typeIsRDDNamed(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && namedInRDD(named)
}

func namedInRDD(n *types.Named) bool {
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "chopper/internal/rdd"
}

// calleeFullName resolves a call's target to its qualified name
// ("fmt.Errorf", "(*chopper/internal/rdd.RDD).Map"), or "".
func calleeFullName(info *types.Info, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	if fn, ok := info.Uses[id].(*types.Func); ok {
		return fn.FullName()
	}
	return ""
}
