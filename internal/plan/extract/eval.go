package extract

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"reflect"
)

// evalMulti evaluates an expression that may produce several values (a
// call in a tuple assignment); everything else yields exactly one.
func (in *interp) evalMulti(e ast.Expr, env *scope) []val {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		return in.evalCall(call, env)
	}
	return []val{in.evalExpr(e, env)}
}

func (in *interp) evalExpr(e ast.Expr, env *scope) val {
	e = ast.Unparen(e)
	// Compile-time constants (literals, named constants, constant folding)
	// come straight from the type checker.
	if tv, ok := in.info.Types[e]; ok && tv.Value != nil {
		return in.constVal(tv)
	}
	switch x := e.(type) {
	case *ast.Ident:
		if x.Name == "nil" {
			return knownNil()
		}
		if c, ok := in.info.Uses[x].(*types.Const); ok {
			return in.constVal(types.TypeAndValue{Type: c.Type(), Value: c.Val()})
		}
		if v, ok := env.lookup(x.Name); ok {
			return v
		}
		return unknown() // package-level variable: data the plan ignores
	case *ast.SelectorExpr:
		return in.evalSelector(x, env)
	case *ast.CallExpr:
		res := in.evalCall(x, env)
		if len(res) == 0 {
			return unknown()
		}
		return res[0]
	case *ast.BinaryExpr:
		lhs := in.evalExpr(x.X, env)
		rhs := in.evalExpr(x.Y, env)
		return in.binop(x.Pos(), x.Op, lhs, rhs, in.info.TypeOf(x))
	case *ast.UnaryExpr:
		return in.unop(x, env)
	case *ast.IndexExpr:
		coll := in.evalExpr(x.X, env)
		idx := in.evalExpr(x.Index, env)
		if coll.known && !coll.isNil && idx.known && !idx.isNil &&
			(coll.rv.Kind() == reflect.Slice || coll.rv.Kind() == reflect.Array) &&
			isIntKind(idx.rv.Kind()) {
			i := int(idx.rv.Int())
			if i >= 0 && i < coll.rv.Len() {
				return knownRV(coll.rv.Index(i))
			}
		}
		return unknown()
	case *ast.FuncLit:
		return val{lit: x}
	case *ast.CompositeLit, *ast.TypeAssertExpr, *ast.SliceExpr, *ast.StarExpr:
		return unknown()
	}
	return unknown()
}

// constVal converts a type checker constant into a known value of the
// corresponding Go type.
func (in *interp) constVal(tv types.TypeAndValue) val {
	rt := basicReflectType(tv.Type)
	if rt == nil {
		return unknown()
	}
	out := reflect.New(rt).Elem()
	switch rt.Kind() {
	case reflect.Bool:
		out.SetBool(constant.BoolVal(tv.Value))
	case reflect.String:
		out.SetString(constant.StringVal(tv.Value))
	case reflect.Float64:
		f, _ := constant.Float64Val(tv.Value)
		out.SetFloat(f)
	default:
		i, ok := constant.Int64Val(constant.ToInt(tv.Value))
		if !ok {
			return unknown()
		}
		out.SetInt(i)
	}
	return knownRV(out)
}

// basicReflectType maps a basic (or basic-underlying) type to its reflect
// counterpart; nil for anything the evaluator does not model.
func basicReflectType(t types.Type) reflect.Type {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	switch b.Kind() {
	case types.Bool, types.UntypedBool:
		return reflect.TypeOf(false)
	case types.Int, types.UntypedInt:
		return reflect.TypeOf(int(0))
	case types.Int8:
		return reflect.TypeOf(int8(0))
	case types.Int16:
		return reflect.TypeOf(int16(0))
	case types.Int32, types.UntypedRune:
		return reflect.TypeOf(int32(0))
	case types.Int64:
		return reflect.TypeOf(int64(0))
	case types.Float64, types.UntypedFloat:
		return reflect.TypeOf(float64(0))
	case types.String, types.UntypedString:
		return reflect.TypeOf("")
	}
	return nil
}

func isIntKind(k reflect.Kind) bool {
	switch k {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return true
	}
	return false
}

func isFloatKind(k reflect.Kind) bool {
	return k == reflect.Float32 || k == reflect.Float64
}

// evalSelector resolves field reads (receiver fields via reflection on the
// live workload value, exported context fields) and leaves everything else
// unknown.
func (in *interp) evalSelector(sel *ast.SelectorExpr, env *scope) val {
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := in.info.Uses[id].(*types.PkgName); isPkg {
			return unknown() // package-level name; constants were caught above
		}
	}
	x := in.evalExpr(sel.X, env)
	if !x.known || x.isNil {
		return unknown()
	}
	rv := x.rv
	for rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return unknown()
		}
		rv = rv.Elem()
	}
	if rv.Kind() != reflect.Struct {
		return unknown()
	}
	f := rv.FieldByName(sel.Sel.Name)
	if !f.IsValid() || !f.CanInterface() {
		return unknown()
	}
	return knownRV(f)
}

func (in *interp) unop(x *ast.UnaryExpr, env *scope) val {
	v := in.evalExpr(x.X, env)
	if !v.known || v.isNil {
		return unknown()
	}
	switch x.Op {
	case token.SUB:
		out := reflect.New(v.rv.Type()).Elem()
		switch {
		case isIntKind(v.rv.Kind()):
			out.SetInt(-v.rv.Int())
		case isFloatKind(v.rv.Kind()):
			out.SetFloat(-v.rv.Float())
		default:
			return unknown()
		}
		return knownRV(out)
	case token.NOT:
		if v.rv.Kind() == reflect.Bool {
			return known(!v.rv.Bool())
		}
	case token.ADD:
		return v
	}
	return unknown()
}

// binop evaluates a binary operation when both sides are statically known.
// t is the static type of the whole expression (drives the result kind for
// mixed-width integer arithmetic).
func (in *interp) binop(pos token.Pos, op token.Token, x, y val, t types.Type) val {
	// nil comparisons: the evaluator models action errors as known-nil, so
	// `err != nil` guards resolve and the success path is followed.
	if op == token.EQL || op == token.NEQ {
		if x.isNil || y.isNil {
			return in.nilCompare(op, x, y)
		}
	}
	if !x.known || !y.known || x.isNil || y.isNil {
		return unknown()
	}
	xv, yv := x.rv, y.rv
	switch {
	case xv.Kind() == reflect.Bool && yv.Kind() == reflect.Bool:
		a, b := xv.Bool(), yv.Bool()
		switch op {
		case token.LAND:
			return known(a && b)
		case token.LOR:
			return known(a || b)
		case token.EQL:
			return known(a == b)
		case token.NEQ:
			return known(a != b)
		}
	case xv.Kind() == reflect.String && yv.Kind() == reflect.String:
		a, b := xv.String(), yv.String()
		switch op {
		case token.ADD:
			return known(a + b)
		case token.EQL:
			return known(a == b)
		case token.NEQ:
			return known(a != b)
		case token.LSS:
			return known(a < b)
		case token.GTR:
			return known(a > b)
		}
	case isFloatKind(xv.Kind()) || isFloatKind(yv.Kind()):
		a, b := toFloat(xv), toFloat(yv)
		switch op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			return known(floatCompare(op, a, b))
		case token.QUO:
			if b == 0 {
				in.bail(pos, "statically known division by zero")
			}
			return in.numResult(a/b, t)
		case token.ADD:
			return in.numResult(a+b, t)
		case token.SUB:
			return in.numResult(a-b, t)
		case token.MUL:
			return in.numResult(a*b, t)
		}
	case isIntKind(xv.Kind()) && isIntKind(yv.Kind()):
		a, b := xv.Int(), yv.Int()
		switch op {
		case token.EQL:
			return known(a == b)
		case token.NEQ:
			return known(a != b)
		case token.LSS:
			return known(a < b)
		case token.LEQ:
			return known(a <= b)
		case token.GTR:
			return known(a > b)
		case token.GEQ:
			return known(a >= b)
		case token.QUO, token.REM:
			if b == 0 {
				in.bail(pos, "statically known division by zero")
			}
			if op == token.QUO {
				return in.intResult(a/b, t)
			}
			return in.intResult(a%b, t)
		case token.ADD:
			return in.intResult(a+b, t)
		case token.SUB:
			return in.intResult(a-b, t)
		case token.MUL:
			return in.intResult(a*b, t)
		}
	}
	return unknown()
}

func toFloat(v reflect.Value) float64 {
	if isIntKind(v.Kind()) {
		return float64(v.Int())
	}
	return v.Float()
}

func floatCompare(op token.Token, a, b float64) bool {
	switch op {
	case token.EQL:
		return a == b
	case token.NEQ:
		return a != b
	case token.LSS:
		return a < b
	case token.LEQ:
		return a <= b
	case token.GTR:
		return a > b
	}
	return a >= b
}

// intResult wraps an integer result in the expression's static type.
func (in *interp) intResult(v int64, t types.Type) val {
	rt := basicReflectType(t)
	if rt == nil || !isIntKind(rt.Kind()) {
		return known(v)
	}
	out := reflect.New(rt).Elem()
	out.SetInt(v)
	return knownRV(out)
}

func (in *interp) numResult(v float64, t types.Type) val {
	rt := basicReflectType(t)
	if rt != nil && isIntKind(rt.Kind()) {
		return in.intResult(int64(v), t)
	}
	return known(v)
}

// nilCompare resolves ==/!= when at least one side is a known nil.
func (in *interp) nilCompare(op token.Token, x, y val) val {
	eq := func(equal bool) val {
		if op == token.NEQ {
			return known(!equal)
		}
		return known(equal)
	}
	switch {
	case x.isNil && y.isNil:
		return eq(true)
	case x.isNil && y.known:
		return eq(nilableIsNil(y.rv))
	case y.isNil && x.known:
		return eq(nilableIsNil(x.rv))
	}
	return unknown()
}

func nilableIsNil(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Pointer, reflect.Interface, reflect.Slice, reflect.Map, reflect.Chan, reflect.Func:
		return v.IsNil()
	}
	return false
}
