package extract

import (
	"fmt"
	"sort"
	"sync"

	"chopper/internal/dag"
	"chopper/internal/rdd"
)

// KeyShape is the identity-independent fingerprint of one lineage node's
// partitioning-relevant facts: its position in creation order, its operator,
// whether it carries an output partitioner (and which family), which
// co-partition group that partitioner belongs to, and the kinds of its
// dependencies. Partitioner identities are never compared directly — static
// identities are partly synthetic — only their GROUPING pattern is: Group is
// the first-seen ordinal of the node's partitioner identity within the job,
// so "these three nodes share one partitioner, that one has its own" reads
// the same whether the identities are real or modeled.
type KeyShape struct {
	Ord      int
	Op       string
	HasPart  bool
	Scheme   string
	Group    int
	DepKinds string
}

// String renders the shape compactly for diffs.
func (s KeyShape) String() string {
	part := "none"
	if s.HasPart {
		part = fmt.Sprintf("%s/g%d", s.Scheme, s.Group)
	}
	return fmt.Sprintf("#%d op=%s part=%s deps=%s", s.Ord, s.Op, part, s.DepKinds)
}

// StaticKeyShapes canonicalizes a job's inferred KeyFacts into its key-shape
// sequence.
func StaticKeyShapes(facts []KeyFacts) []KeyShape {
	out := make([]KeyShape, len(facts))
	group := map[int64]int{}
	for i, f := range facts {
		sh := KeyShape{Ord: i, Op: f.Op, HasPart: f.HasPart, Scheme: f.Scheme, Group: -1, DepKinds: f.DepKinds}
		if f.HasPart {
			g, ok := group[f.PartID]
			if !ok {
				g = len(group)
				group[f.PartID] = g
			}
			sh.Group = g
		}
		if !f.HasPart {
			sh.Scheme = ""
		}
		out[i] = sh
	}
	return out
}

// runtimeKeyShapes reads the live lineage of a submitted plan's final RDD
// and canonicalizes what the runtime actually built. Nodes are ordered by
// RDD ID (creation order), matching the static rows.
func runtimeKeyShapes(final *rdd.RDD) []KeyShape {
	nodes := append([]*rdd.RDD(nil), final.Lineage()...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	out := make([]KeyShape, len(nodes))
	group := map[int64]int{}
	for i, n := range nodes {
		sh := KeyShape{Ord: i, Op: n.Op, Group: -1}
		if n.Part != nil {
			sh.HasPart = true
			sh.Scheme = n.Part.Name()
			id := n.Part.Identity()
			g, ok := group[id]
			if !ok {
				g = len(group)
				group[id] = g
			}
			sh.Group = g
		}
		kinds := make([]byte, 0, len(n.Deps))
		for _, d := range n.Deps {
			switch d.(type) {
			case *rdd.ShuffleDep:
				kinds = append(kinds, 's')
			default:
				kinds = append(kinds, 'n')
			}
		}
		sh.DepKinds = string(kinds)
		out[i] = sh
	}
	return out
}

// CapturedKeyJob is one job's key shapes as observed at run time,
// snapshotted at observation time like CapturedJob (the scheduler mutates
// plan structs in place right after the hook returns).
type CapturedKeyJob struct {
	Shapes []KeyShape
}

// KeyCapture records the key shapes of every plan the scheduler submits;
// its Hook plugs into experiments.Options.OnPlan alongside Capture's.
type KeyCapture struct {
	mu   sync.Mutex
	jobs []CapturedKeyJob
}

// Hook returns the observer to install on the scheduler.
func (c *KeyCapture) Hook() func(result *dag.Stage, topo []*dag.Stage) {
	return func(result *dag.Stage, topo []*dag.Stage) {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.jobs = append(c.jobs, CapturedKeyJob{Shapes: runtimeKeyShapes(result.Final)})
	}
}

// Jobs returns the captured key shapes in submission order.
func (c *KeyCapture) Jobs() []CapturedKeyJob {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]CapturedKeyJob(nil), c.jobs...)
}

// KeyDrift diffs a static report's inferred key facts against the runtime
// capture of the same workload: one human-readable line per divergence,
// empty when the statically predicted partitioner placement, co-partition
// grouping, and dependency kinds match what the runtime built.
func KeyDrift(static *Report, runtime []CapturedKeyJob) []string {
	var out []string
	if len(static.Jobs) != len(runtime) {
		out = append(out, fmt.Sprintf("job count: static extracted %d jobs, runtime submitted %d",
			len(static.Jobs), len(runtime)))
	}
	n := min(len(static.Jobs), len(runtime))
	for i := 0; i < n; i++ {
		s := StaticKeyShapes(static.Jobs[i].Keys)
		out = append(out, diffKeyShapes(fmt.Sprintf("job %d (%s)", i, static.Jobs[i].Action), s, runtime[i].Shapes)...)
	}
	return out
}

// diffKeyShapes compares two key-shape sequences node by node.
func diffKeyShapes(label string, static, runtime []KeyShape) []string {
	var out []string
	if len(static) != len(runtime) {
		out = append(out, fmt.Sprintf("%s: node count: static %d, runtime %d", label, len(static), len(runtime)))
	}
	n := min(len(static), len(runtime))
	for i := 0; i < n; i++ {
		if static[i].String() != runtime[i].String() {
			out = append(out, fmt.Sprintf("%s: node %d: static %s, runtime %s",
				label, i, static[i], runtime[i]))
		}
	}
	return out
}
