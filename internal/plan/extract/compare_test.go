package extract_test

import (
	"strings"
	"testing"

	"chopper/internal/experiments"
	"chopper/internal/plan/extract"
	"chopper/internal/workloads"
)

// staticCapture extracts a workload and rebuilds the CapturedJob list the
// runtime WOULD have produced if it matched the static plans exactly —
// the self-consistent baseline the edge-case tests perturb.
func staticCapture(t *testing.T, name string) (*extract.Report, []extract.CapturedJob) {
	t.Helper()
	ex := sharedExtractor(t)
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	workloads.Shrink(w, shrink)
	rep, err := ex.Extract(w, w.DefaultInputBytes(), experiments.DefaultParallelism)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]extract.CapturedJob, len(rep.Jobs))
	for i, j := range rep.Jobs {
		jobs[i] = extract.CapturedJob{Shapes: extract.Shape(j.Plan, j.Topo)}
	}
	return rep, jobs
}

// TestDriftEdgeCases pins Drift's behaviour on the degenerate inputs the
// gate can see in practice: an extractor that produced nothing, a runtime
// that submitted fewer jobs than predicted, and a stage pruned out of a
// submitted plan (the cache-warmth failure mode).
func TestDriftEdgeCases(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the workloads package")
	}
	rep, jobs := staticCapture(t, "sql")

	t.Run("self-consistent", func(t *testing.T) {
		if d := extract.Drift(rep, jobs); len(d) != 0 {
			t.Fatalf("static plans must not drift against themselves: %v", d)
		}
	})

	t.Run("empty-static-plan", func(t *testing.T) {
		d := extract.Drift(&extract.Report{}, jobs)
		if len(d) != 1 || !strings.Contains(d[0], "static extracted 0 jobs") {
			t.Fatalf("empty static report must yield exactly the job-count line, got %v", d)
		}
	})

	t.Run("job-count-mismatch", func(t *testing.T) {
		short := jobs[:len(jobs)-1]
		d := extract.Drift(rep, short)
		if len(d) == 0 || !strings.Contains(d[0], "job count") {
			t.Fatalf("missing runtime job must be reported as a job-count drift, got %v", d)
		}
		// The common prefix still matches: the only line is the count line.
		if len(d) != 1 {
			t.Fatalf("matching prefix jobs must not produce extra lines, got %v", d)
		}
	})

	t.Run("stage-pruned-at-runtime", func(t *testing.T) {
		pruned := make([]extract.CapturedJob, len(jobs))
		copy(pruned, jobs)
		last := len(pruned) - 1
		shapes := append([]extract.StageShape(nil), pruned[last].Shapes...)
		if len(shapes) < 2 {
			t.Fatalf("need a multi-stage job to prune, got %d stages", len(shapes))
		}
		pruned[last] = extract.CapturedJob{Shapes: shapes[1:]}
		d := extract.Drift(rep, pruned)
		if len(d) == 0 {
			t.Fatal("pruned runtime stage must be reported")
		}
		var sawCount bool
		for _, line := range d {
			if strings.Contains(line, "stage count") {
				sawCount = true
			}
		}
		if !sawCount {
			t.Fatalf("drift must include a stage-count line, got %v", d)
		}
	})
}

// TestKeyDriftEdgeCases gives the key-fact gate the same degenerate-input
// coverage as the plan gate.
func TestKeyDriftEdgeCases(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the workloads package")
	}
	rep, _ := staticCapture(t, "sql")
	jobs := make([]extract.CapturedKeyJob, len(rep.Jobs))
	for i, j := range rep.Jobs {
		jobs[i] = extract.CapturedKeyJob{Shapes: extract.StaticKeyShapes(j.Keys)}
	}

	if d := extract.KeyDrift(rep, jobs); len(d) != 0 {
		t.Fatalf("static key facts must not drift against themselves: %v", d)
	}
	if d := extract.KeyDrift(&extract.Report{}, jobs); len(d) != 1 || !strings.Contains(d[0], "0 jobs") {
		t.Fatalf("empty static report must yield exactly the job-count line, got %v", d)
	}
	if d := extract.KeyDrift(rep, jobs[:len(jobs)-1]); len(d) != 1 || !strings.Contains(d[0], "job count") {
		t.Fatalf("missing runtime job must be reported as a job-count drift, got %v", d)
	}
}
