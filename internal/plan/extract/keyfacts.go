package extract

import (
	"fmt"
	"go/ast"
	"reflect"
	"sort"

	"chopper/internal/lint"
	"chopper/internal/rdd"
)

// This file is the chopperkey side of the symbolic evaluator: while the
// interpreter replays a workload's Run method against the real rdd API, the
// keyTracker maintains an INDEPENDENT, method-name-driven model of every
// key-relevant fact — which RDDs are pair-keyed, where their key expression
// came from, how large its value space provably is, and which partitioner
// identity (if any) their output carries. The live rdd structs are consulted
// only for alignment (node IDs and op names); partitioner propagation and
// dependency kinds are PREDICTED from method semantics, and the key-fact
// drift gate (KeyDrift) checks the predictions against what the runtime
// actually built. If someone changes, say, MapValues to stop forwarding the
// partitioner, the model and the runtime disagree and the gate fails.

// KeyedState is the tri-state answer to "are this RDD's rows rdd.Pair?".
type KeyedState int8

// Keyed states.
const (
	KeyedUnknown KeyedState = iota
	KeyedNo
	KeyedYes
)

// String renders the state for diagnostics.
func (k KeyedState) String() string {
	switch k {
	case KeyedYes:
		return "yes"
	case KeyedNo:
		return "no"
	}
	return "unknown"
}

// KeyFacts is the per-RDD lattice element: everything the static analysis
// knows about one lineage node's key and partitioning.
type KeyFacts struct {
	ID int
	Op string

	// Keyed/Prov/Card/Bound describe the key expression: whether rows are
	// pairs, the canonical provenance of the K expression ("" unknown), and
	// the cardinality class of its value space.
	Keyed KeyedState
	Prov  string
	Card  lint.KeyCard
	Bound int

	// HasPart/Scheme/PartID predict the output partitioner: present or not,
	// its family ("hash"/"range"), and its identity. Identities are real
	// (from explicit partitioner arguments) or synthetic negatives (for the
	// fresh defaults resolvePartitioner mints per call); only their grouping
	// pattern is compared, never the absolute values.
	HasPart bool
	Scheme  string
	PartID  int64

	// DepKinds predicts the dependency kinds in Deps order: 'n' narrow,
	// 's' shuffle. The cogroup entries are the interesting ones — a parent
	// is predicted narrow iff the model says it carries the cogroup's
	// partitioner identity.
	DepKinds string
}

// keyTracker accumulates KeyFacts per RDD ID during symbolic evaluation.
type keyTracker struct {
	in      *interp
	facts   map[int]*KeyFacts
	nextSyn int64 // synthetic partitioner identities: -1, -2, ...
}

func newKeyTracker(in *interp) *keyTracker {
	return &keyTracker{in: in, facts: map[int]*KeyFacts{}}
}

// syn mints a fresh synthetic partitioner identity, modeling the fresh
// Partitioner (and fresh Identity) resolvePartitioner creates per call.
func (t *keyTracker) syn() int64 {
	t.nextSyn--
	return t.nextSyn
}

// jobFacts returns the facts of every lineage node of target, sorted by ID
// (creation order). Every node must have been tracked.
func (t *keyTracker) jobFacts(target *rdd.RDD) ([]KeyFacts, error) {
	lineage := target.Lineage()
	out := make([]KeyFacts, 0, len(lineage))
	for _, n := range lineage {
		f, ok := t.facts[n.ID]
		if !ok {
			return nil, fmt.Errorf("no key facts for RDD %d (%s)", n.ID, n.Op)
		}
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// note is called after every interpreted rdd method call with the evaluated
// receiver, the reflect-level arguments (evaluated exactly once — partitioner
// identities must not be re-minted), and the results.
func (t *keyTracker) note(call *ast.CallExpr, name string, recv reflect.Value, args []reflect.Value, out []val, env *scope) {
	switch r := recv.Interface().(type) {
	case *rdd.Context:
		t.noteContext(call, name, args, out)
	case *rdd.RDD:
		t.noteRDD(call, name, r, args, out, env)
	}
}

// firstRDDResult extracts the *rdd.RDD a transform returned.
func firstRDDResult(out []val) *rdd.RDD {
	for _, v := range out {
		if v.known && !v.isNil && v.rv.IsValid() {
			if r, ok := v.rv.Interface().(*rdd.RDD); ok {
				return r
			}
		}
	}
	return nil
}

// take collects the nodes the call created (lineage nodes without facts,
// in ID order) and asserts they match the expected op names — any mismatch
// means the static method model has drifted from the rdd implementation.
func (t *keyTracker) take(call *ast.CallExpr, result *rdd.RDD, ops ...string) []*rdd.RDD {
	if result == nil {
		t.in.bail(call.Pos(), "keyfacts: %s returned no RDD", calleeLabel(call))
	}
	var fresh []*rdd.RDD
	for _, n := range result.Lineage() {
		if _, ok := t.facts[n.ID]; !ok {
			fresh = append(fresh, n)
		}
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].ID < fresh[j].ID })
	if len(fresh) != len(ops) {
		t.in.bail(call.Pos(), "keyfacts: %s created %d nodes, model expects %d", calleeLabel(call), len(fresh), len(ops))
	}
	for i, n := range fresh {
		if n.Op != ops[i] {
			t.in.bail(call.Pos(), "keyfacts: %s node %d has op %q, model expects %q", calleeLabel(call), i, n.Op, ops[i])
		}
	}
	return fresh
}

// parentFacts looks up the receiver's facts; a missing entry is a tracker
// coverage bug and aborts extraction.
func (t *keyTracker) parentFacts(call *ast.CallExpr, r *rdd.RDD) *KeyFacts {
	f, ok := t.facts[r.ID]
	if !ok {
		t.in.bail(call.Pos(), "keyfacts: receiver RDD %d (%s) was never tracked", r.ID, r.Op)
	}
	return f
}

// funcLitAt resolves the call's i-th argument to a function literal: either
// written inline or bound to a local variable the interpreter evaluated.
func (t *keyTracker) funcLitAt(call *ast.CallExpr, i int, env *scope) *ast.FuncLit {
	if i < 0 || i >= len(call.Args) {
		return nil
	}
	switch a := ast.Unparen(call.Args[i]).(type) {
	case *ast.FuncLit:
		return a
	case *ast.Ident:
		if env != nil {
			if v, ok := env.lookup(a.Name); ok {
				return v.lit
			}
		}
	}
	return nil
}

// partArg extracts an explicit partitioner argument, nil when absent.
func partArg(args []reflect.Value, i int) rdd.Partitioner {
	if i < 0 || i >= len(args) {
		return nil
	}
	v := args[i]
	if !v.IsValid() {
		return nil
	}
	if (v.Kind() == reflect.Interface || v.Kind() == reflect.Pointer) && v.IsNil() {
		return nil
	}
	p, _ := v.Interface().(rdd.Partitioner)
	return p
}

// intArg extracts an int argument (0 when unreadable).
func intArg(args []reflect.Value, i int) int {
	if i < 0 || i >= len(args) {
		return 0
	}
	v := args[i]
	if !v.IsValid() || !v.CanInt() {
		return 0
	}
	return int(v.Int())
}

// scanKey summarizes the key expressions of a closure's Pair literals.
func (t *keyTracker) scanKey(lit *ast.FuncLit) (lint.KeyExpr, bool) {
	if lit == nil {
		return lint.KeyExpr{}, false
	}
	return lint.ScanKeyExpr(t.in.info, lit)
}

// setKeyFrom copies a scanned key expression into facts.
func setKeyFrom(f *KeyFacts, k lint.KeyExpr) {
	f.Keyed = KeyedYes
	f.Prov = k.Canon
	f.Card = k.Card
	f.Bound = k.Bound
}

// inheritKey copies the key half (not the partitioner half) of the parent.
func inheritKey(f *KeyFacts, p *KeyFacts) {
	f.Keyed = p.Keyed
	f.Prov = p.Prov
	f.Card = p.Card
	f.Bound = p.Bound
}

// joinKeyFacts merges the key halves of two parents (union/join): facts
// survive only where the sides agree.
func joinKeyFacts(f *KeyFacts, a, b *KeyFacts) {
	if a.Keyed == b.Keyed {
		f.Keyed = a.Keyed
	}
	if a.Prov == b.Prov {
		f.Prov = a.Prov
	}
	if a.Card == b.Card && a.Bound == b.Bound {
		f.Card = a.Card
		f.Bound = a.Bound
	}
}

// noteContext models the two source constructors.
func (t *keyTracker) noteContext(call *ast.CallExpr, name string, args []reflect.Value, out []val) {
	switch name {
	case "Generate":
		op := ""
		if len(args) > 0 && args[0].Kind() == reflect.String {
			op = args[0].String()
		}
		nodes := t.take(call, firstRDDResult(out), op)
		f := &KeyFacts{ID: nodes[0].ID, Op: op}
		if lit := t.funcLitAt(call, 3, nil); lit != nil {
			if k, ok := t.scanKey(lit); ok {
				setKeyFrom(f, k)
			} else {
				f.Keyed = KeyedNo
			}
		}
		t.facts[f.ID] = f
	case "Parallelize":
		nodes := t.take(call, firstRDDResult(out), "parallelize")
		t.facts[nodes[0].ID] = &KeyFacts{ID: nodes[0].ID, Op: "parallelize"}
	}
}

// noteRDD models one RDD transform. Methods that return the receiver
// (Persist/Cache) create no nodes; unknown lineage-building methods abort
// extraction rather than leaving untracked nodes behind.
func (t *keyTracker) noteRDD(call *ast.CallExpr, name string, recv *rdd.RDD, args []reflect.Value, out []val, env *scope) {
	switch name {
	case "Persist", "Cache":
		return

	case "Map", "MapCost":
		op, litIdx := "map", 0
		if name == "MapCost" {
			litIdx = 2
			if len(args) > 0 && args[0].Kind() == reflect.String {
				op = args[0].String()
			}
		}
		nodes := t.take(call, firstRDDResult(out), op)
		f := &KeyFacts{ID: nodes[0].ID, Op: op, DepKinds: "n"}
		par := t.parentFacts(call, recv)
		lit := t.funcLitAt(call, litIdx, env)
		switch {
		case lint.IdentityClosure(t.in.info, lit):
			inheritKey(f, par)
		default:
			if k, ok := t.scanKey(lit); ok {
				setKeyFrom(f, k)
			}
		}
		t.facts[f.ID] = f

	case "Filter":
		nodes := t.take(call, firstRDDResult(out), "filter")
		f := &KeyFacts{ID: nodes[0].ID, Op: "filter", DepKinds: "n"}
		inheritKey(f, t.parentFacts(call, recv))
		t.facts[f.ID] = f

	case "FlatMap":
		nodes := t.take(call, firstRDDResult(out), "flatMap")
		f := &KeyFacts{ID: nodes[0].ID, Op: "flatMap", DepKinds: "n"}
		if k, ok := t.scanKey(t.funcLitAt(call, 0, env)); ok {
			setKeyFrom(f, k)
		}
		t.facts[f.ID] = f

	case "MapPartitions", "Glom":
		op, litIdx := "glom", -1
		if name == "MapPartitions" {
			litIdx = 2
			op = ""
			if len(args) > 0 && args[0].Kind() == reflect.String {
				op = args[0].String()
			}
		}
		nodes := t.take(call, firstRDDResult(out), op)
		f := &KeyFacts{ID: nodes[0].ID, Op: op, DepKinds: "n"}
		if name == "Glom" {
			f.Keyed = KeyedNo
		} else if k, ok := t.scanKey(t.funcLitAt(call, litIdx, env)); ok {
			// Unlike the lint rule, the tracker keeps the cardinality of
			// partition-level rewrites: a provable Pair{K: 0} per split is
			// exactly what lets cold-start seeding shrink the reduce side.
			setKeyFrom(f, k)
		}
		t.facts[f.ID] = f

	case "MapValues":
		nodes := t.take(call, firstRDDResult(out), "mapValues")
		par := t.parentFacts(call, recv)
		f := &KeyFacts{ID: nodes[0].ID, Op: "mapValues", DepKinds: "n",
			HasPart: par.HasPart, Scheme: par.Scheme, PartID: par.PartID}
		inheritKey(f, par)
		t.facts[f.ID] = f

	case "KeyBy":
		nodes := t.take(call, firstRDDResult(out), "keyBy")
		t.facts[nodes[0].ID] = &KeyFacts{ID: nodes[0].ID, Op: "keyBy", Keyed: KeyedYes, DepKinds: "n"}

	case "Keys", "Values":
		op := "keys"
		if name == "Values" {
			op = "values"
		}
		nodes := t.take(call, firstRDDResult(out), op)
		t.facts[nodes[0].ID] = &KeyFacts{ID: nodes[0].ID, Op: op, Keyed: KeyedNo, DepKinds: "n"}

	case "Coalesce", "Sample":
		op := "coalesce"
		if name == "Sample" {
			op = "sample"
		}
		nodes := t.take(call, firstRDDResult(out), op)
		f := &KeyFacts{ID: nodes[0].ID, Op: op, DepKinds: "n"}
		inheritKey(f, t.parentFacts(call, recv))
		t.facts[f.ID] = f

	case "Union":
		nodes := t.take(call, firstRDDResult(out), "union")
		f := &KeyFacts{ID: nodes[0].ID, Op: "union", DepKinds: "nn"}
		if other := rddArg(args, 0); other != nil {
			joinKeyFacts(f, t.parentFacts(call, recv), t.parentFacts(call, other))
		}
		t.facts[f.ID] = f

	case "PartitionBy", "Repartition", "CombineByKey", "ReduceByKey",
		"ReduceByKeyPart", "GroupByKey", "AggregateByKey":
		t.noteShuffle(call, name, recv, args, out)

	case "SortByKey":
		nodes := t.take(call, firstRDDResult(out), "sortByKey", "sortPartition")
		par := t.parentFacts(call, recv)
		pid := t.syn() // fresh pending RangePartitioner
		sh := &KeyFacts{ID: nodes[0].ID, Op: "sortByKey", DepKinds: "s",
			HasPart: true, Scheme: string(rdd.SchemeRange), PartID: pid}
		inheritKey(sh, par)
		t.facts[sh.ID] = sh
		srt := &KeyFacts{ID: nodes[1].ID, Op: "sortPartition", DepKinds: "n",
			HasPart: true, Scheme: string(rdd.SchemeRange), PartID: pid}
		inheritKey(srt, par)
		t.facts[srt.ID] = srt

	case "Distinct":
		nodes := t.take(call, firstRDDResult(out), "distinctKey", "distinct", "values")
		keyed := &KeyFacts{ID: nodes[0].ID, Op: "distinctKey", Keyed: KeyedYes, DepKinds: "n"}
		t.facts[keyed.ID] = keyed
		sh := &KeyFacts{ID: nodes[1].ID, Op: "distinct", Keyed: KeyedYes, DepKinds: "s",
			HasPart: true, Scheme: string(rdd.SchemeHash), PartID: t.syn()}
		t.facts[sh.ID] = sh
		vals := &KeyFacts{ID: nodes[2].ID, Op: "values", Keyed: KeyedNo, DepKinds: "n"}
		t.facts[vals.ID] = vals

	case "CoGroup":
		nodes := t.take(call, firstRDDResult(out), "cogroup")
		t.noteCoGroupNode(call, nodes[0], recv, rddArg(args, 0), partArg(args, 1))

	case "Join", "LeftOuterJoin", "RightOuterJoin", "FullOuterJoin",
		"SubtractByKey", "IntersectKeys":
		childOp := map[string]string{
			"Join": "join", "LeftOuterJoin": "leftOuterJoin",
			"RightOuterJoin": "rightOuterJoin", "FullOuterJoin": "fullOuterJoin",
			"SubtractByKey": "subtractByKey", "IntersectKeys": "intersectKeys",
		}[name]
		nodes := t.take(call, firstRDDResult(out), "cogroup", childOp)
		cg := t.noteCoGroupNode(call, nodes[0], recv, rddArg(args, 0), partArg(args, 1))
		child := &KeyFacts{ID: nodes[1].ID, Op: childOp, Keyed: KeyedYes, DepKinds: "n",
			HasPart: true, Scheme: cg.Scheme, PartID: cg.PartID}
		if name == "SubtractByKey" || name == "IntersectKeys" {
			// Rows keep the receiver's keys (and values); the other side only
			// filters.
			child.Prov = t.parentFacts(call, recv).Prov
			child.Card = t.parentFacts(call, recv).Card
			child.Bound = t.parentFacts(call, recv).Bound
		} else {
			child.Prov = cg.Prov
			child.Card = cg.Card
			child.Bound = cg.Bound
		}
		t.facts[child.ID] = child

	default:
		// A lineage-building method the model does not cover would leave
		// untracked nodes; fail loudly. Non-RDD-returning helpers (String,
		// Lineage) create nothing and pass through.
		if firstRDDResult(out) != nil {
			t.in.bail(call.Pos(), "keyfacts: rdd method %s is not modeled", name)
		}
	}
}

// shuffleArgIdx maps single-shuffle methods to (partitioner arg index,
// count arg index); -1 when the method has no such argument.
var shuffleArgIdx = map[string][2]int{
	"PartitionBy":     {0, -1},
	"Repartition":     {-1, 0},
	"CombineByKey":    {1, -1},
	"ReduceByKey":     {-1, 1},
	"ReduceByKeyPart": {1, -1},
	"GroupByKey":      {-1, 0},
	"AggregateByKey":  {-1, 3},
}

// shuffleOps maps method names to runtime op strings.
var shuffleOps = map[string]string{
	"PartitionBy": "partitionBy", "Repartition": "repartition",
	"CombineByKey": "combineByKey", "ReduceByKey": "reduceByKey",
	"ReduceByKeyPart": "reduceByKey", "GroupByKey": "groupByKey",
	"AggregateByKey": "aggregateByKey",
}

// noteShuffle models the single-node hash shuffles: key facts pass through
// (shuffles repartition by key, they don't change it); the output carries
// the explicit partitioner's identity, or a fresh synthetic one for the
// per-call defaults resolvePartitioner mints.
func (t *keyTracker) noteShuffle(call *ast.CallExpr, name string, recv *rdd.RDD, args []reflect.Value, out []val) {
	op := shuffleOps[name]
	nodes := t.take(call, firstRDDResult(out), op)
	idx := shuffleArgIdx[name]
	f := &KeyFacts{ID: nodes[0].ID, Op: op, DepKinds: "s", HasPart: true, Scheme: string(rdd.SchemeHash)}
	if p := partArg(args, idx[0]); p != nil {
		f.Scheme = p.Name()
		f.PartID = p.Identity()
	} else {
		f.PartID = t.syn()
	}
	inheritKey(f, t.parentFacts(call, recv))
	t.facts[f.ID] = f
}

// noteCoGroupNode models the cogroup node shared by CoGroup and the join
// family: each parent is predicted narrow iff the model says it already
// carries the cogroup's partitioner identity.
func (t *keyTracker) noteCoGroupNode(call *ast.CallExpr, node *rdd.RDD, recv, other *rdd.RDD, p rdd.Partitioner) *KeyFacts {
	if other == nil {
		t.in.bail(call.Pos(), "keyfacts: %s has no statically known other side", calleeLabel(call))
	}
	f := &KeyFacts{ID: node.ID, Op: "cogroup", Keyed: KeyedYes, HasPart: true, Scheme: string(rdd.SchemeHash)}
	if p != nil {
		f.Scheme = p.Name()
		f.PartID = p.Identity()
	} else {
		f.PartID = t.syn()
	}
	left, right := t.parentFacts(call, recv), t.parentFacts(call, other)
	kinds := ""
	for _, par := range []*KeyFacts{left, right} {
		if par.HasPart && par.PartID == f.PartID {
			kinds += "n"
		} else {
			kinds += "s"
		}
	}
	f.DepKinds = kinds
	if left.Prov == right.Prov {
		f.Prov = left.Prov
	}
	if left.Card == right.Card && left.Bound == right.Bound {
		f.Card = left.Card
		f.Bound = left.Bound
	}
	t.facts[f.ID] = f
	return f
}

// rddArg extracts an *rdd.RDD argument.
func rddArg(args []reflect.Value, i int) *rdd.RDD {
	if i < 0 || i >= len(args) || !args[i].IsValid() {
		return nil
	}
	r, _ := args[i].Interface().(*rdd.RDD)
	return r
}
