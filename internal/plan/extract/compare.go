package extract

import (
	"fmt"
	"strings"
	"sync"

	"chopper/internal/dag"
)

// StageShape is the cache- and ID-independent fingerprint of one stage:
// its position in the topological order, the final RDD's operator, the
// task count, the output partitioner, and the topo positions of its
// parents (in InDeps order). Two plans with equal shape sequences are
// isomorphic stage graphs. Signatures are deliberately excluded — they
// encode cache warmth, which differs between a cold static build and a
// mid-run capture of the same structure.
type StageShape struct {
	Index       int
	Op          string
	NumTasks    int
	Partitioner string
	IsResult    bool
	Parents     []int
}

// String renders the shape compactly for diffs.
func (s StageShape) String() string {
	kind := "map"
	if s.IsResult {
		kind = "result"
	}
	parents := make([]string, len(s.Parents))
	for i, p := range s.Parents {
		parents[i] = fmt.Sprint(p)
	}
	return fmt.Sprintf("#%d %s op=%s tasks=%d part=%s parents=[%s]",
		s.Index, kind, s.Op, s.NumTasks, s.Partitioner, strings.Join(parents, ","))
}

// Shape canonicalizes a stage plan (as returned by dag.BuildPlan or seen
// by the scheduler's OnPlan hook) into its shape sequence.
func Shape(result *dag.Stage, topo []*dag.Stage) []StageShape {
	index := make(map[*dag.Stage]int, len(topo))
	for i, st := range topo {
		index[st] = i
	}
	out := make([]StageShape, len(topo))
	for i, st := range topo {
		sh := StageShape{
			Index:       i,
			Op:          st.Final.Op,
			NumTasks:    st.NumTasks(),
			Partitioner: st.PartitionerName(),
			IsResult:    st.IsResult,
		}
		for _, p := range st.Parents {
			sh.Parents = append(sh.Parents, index[p])
		}
		out[i] = sh
	}
	return out
}

// CapturedJob is one job's plan as observed at run time, snapshotted to
// shapes at observation time: the scheduler mutates the Stage structs in
// place right after the OnPlan hook returns (cache pruning strips Parents
// and InDeps), so holding the pointers would record the pruned graph, not
// the submitted one.
type CapturedJob struct {
	Shapes []StageShape
}

// Capture records every plan the scheduler submits; its Hook plugs into
// experiments.Options.OnPlan (or dag.Scheduler.OnPlan directly).
type Capture struct {
	mu   sync.Mutex
	jobs []CapturedJob
}

// Hook returns the observer to install on the scheduler.
func (c *Capture) Hook() func(result *dag.Stage, topo []*dag.Stage) {
	return func(result *dag.Stage, topo []*dag.Stage) {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.jobs = append(c.jobs, CapturedJob{Shapes: Shape(result, topo)})
	}
}

// Jobs returns the captured plans in submission order.
func (c *Capture) Jobs() []CapturedJob {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]CapturedJob(nil), c.jobs...)
}

// Drift diffs a static report against the runtime capture of the same
// workload. It returns one human-readable line per divergence; empty means
// the statically extracted plans are isomorphic to the submitted ones.
func Drift(static *Report, runtime []CapturedJob) []string {
	var out []string
	if len(static.Jobs) != len(runtime) {
		out = append(out, fmt.Sprintf("job count: static extracted %d jobs, runtime submitted %d",
			len(static.Jobs), len(runtime)))
	}
	n := min(len(static.Jobs), len(runtime))
	for i := 0; i < n; i++ {
		s := Shape(static.Jobs[i].Plan, static.Jobs[i].Topo)
		out = append(out, diffShapes(fmt.Sprintf("job %d (%s)", i, static.Jobs[i].Action), s, runtime[i].Shapes)...)
	}
	return out
}

// diffShapes compares two shape sequences stage by stage.
func diffShapes(label string, static, runtime []StageShape) []string {
	var out []string
	if len(static) != len(runtime) {
		out = append(out, fmt.Sprintf("%s: stage count: static %d, runtime %d", label, len(static), len(runtime)))
	}
	n := min(len(static), len(runtime))
	for i := 0; i < n; i++ {
		if static[i].String() != runtime[i].String() {
			out = append(out, fmt.Sprintf("%s: stage %d: static %s, runtime %s",
				label, i, static[i], runtime[i]))
		}
	}
	return out
}
