package extract

import (
	"go/ast"
	"go/types"
	"reflect"

	"chopper/internal/rdd"
)

// actionNames are the rdd methods that submit jobs. The evaluator never
// invokes them (the context has no runner); it records the lineage they
// would submit and models their results as unknown data with a nil error.
var actionNames = map[string]bool{
	"Collect": true, "Count": true, "Reduce": true, "Take": true,
	"First": true, "CollectPairsMap": true, "CountByKey": true,
	"TakeSample": true, "SumFloat": true, "SortedKeys": true,
	"FloatStats": true, "Histogram": true, "TopByKey": true,
}

// rddPackageFuncs are the package-level rdd constructors workloads call
// with statically known arguments.
var rddPackageFuncs = map[string]reflect.Value{
	"chopper/internal/rdd.NewHashPartitioner": reflect.ValueOf(rdd.NewHashPartitioner),
}

// evalCall evaluates a call expression to its result values.
func (in *interp) evalCall(call *ast.CallExpr, env *scope) []val {
	// Type conversions: int64(x), float64(x), ...
	if tv, ok := in.info.Types[call.Fun]; ok && tv.IsType() {
		return []val{in.evalConversion(call, tv.Type, env)}
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := in.info.Uses[id].(*types.Builtin); ok {
			return []val{in.evalBuiltin(call, b.Name(), env)}
		}
	}
	// Method calls on known receivers: the real rdd API (and anything else
	// reachable by reflection, e.g. partitioner methods).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := in.info.Uses[sel.Sel].(*types.Func); ok && fn.Type().(*types.Signature).Recv() != nil {
			return in.evalMethodCall(call, sel, env)
		}
	}
	// Package-level functions.
	if name := calleeFullName(in.info, call); name != "" {
		if fv, ok := rddPackageFuncs[name]; ok {
			return in.invoke(call, fv, env)
		}
	}
	return in.opaqueCall(call, env)
}

func (in *interp) evalConversion(call *ast.CallExpr, target types.Type, env *scope) val {
	if len(call.Args) != 1 {
		return unknown()
	}
	v := in.evalExpr(call.Args[0], env)
	if !v.known || v.isNil {
		return unknown()
	}
	rt := basicReflectType(target)
	if rt == nil || !v.rv.Type().ConvertibleTo(rt) {
		return unknown()
	}
	return knownRV(v.rv.Convert(rt))
}

func (in *interp) evalBuiltin(call *ast.CallExpr, name string, env *scope) val {
	switch name {
	case "len", "cap":
		if len(call.Args) != 1 {
			return unknown()
		}
		v := in.evalExpr(call.Args[0], env)
		if v.known && !v.isNil {
			switch v.rv.Kind() {
			case reflect.Slice, reflect.Array, reflect.Map, reflect.String, reflect.Chan:
				return known(v.rv.Len())
			}
		}
		return unknown()
	}
	// make/append/new/copy/delete produce or mutate driver-side data only.
	in.guardArgs(call, env)
	return unknown()
}

// evalMethodCall dispatches a method call: rdd actions are intercepted,
// everything on a known receiver goes through reflection, and calls on
// unknown receivers are opaque — unless they would build lineage, which
// makes the plan unextractable.
func (in *interp) evalMethodCall(call *ast.CallExpr, sel *ast.SelectorExpr, env *scope) []val {
	recv := in.evalExpr(sel.X, env)
	name := sel.Sel.Name
	if !recv.known || recv.isNil {
		return in.opaqueCall(call, env)
	}
	if r, ok := recv.rv.Interface().(*rdd.RDD); ok && actionNames[name] {
		in.guardArgs(call, env)
		in.jobs = append(in.jobs, symJob{action: name, target: r})
		return in.actionResults(recv.rv, name)
	}
	m := recv.rv.MethodByName(name)
	if !m.IsValid() {
		return in.opaqueCall(call, env)
	}
	out, args := in.invokeWithArgs(call, m, env)
	in.keys.note(call, name, recv.rv, args, out, env)
	return out
}

// actionResults models an intercepted action's return values: unknown data
// plus a nil error (the evaluator follows the success path; failures are a
// runtime property no static plan depends on).
func (in *interp) actionResults(recv reflect.Value, name string) []val {
	mt := recv.MethodByName(name).Type()
	out := make([]val, mt.NumOut())
	errType := reflect.TypeOf((*error)(nil)).Elem()
	for i := range out {
		if mt.Out(i) == errType {
			out[i] = knownNil()
		} else {
			out[i] = unknown()
		}
	}
	return out
}

// invoke calls a real function/method via reflection. Function-literal
// arguments become stubs of the parameter's type (transforms are lazy;
// their closures never run during extraction); every other argument must
// be statically known.
func (in *interp) invoke(call *ast.CallExpr, fn reflect.Value, env *scope) []val {
	out, _ := in.invokeWithArgs(call, fn, env)
	return out
}

// invokeWithArgs is invoke exposed with the evaluated argument values, so
// the key tracker can inspect partitioner/count arguments without
// re-evaluating them (re-evaluation would mint duplicate partitioner
// identities).
func (in *interp) invokeWithArgs(call *ast.CallExpr, fn reflect.Value, env *scope) ([]val, []reflect.Value) {
	ft := fn.Type()
	if ft.IsVariadic() || ft.NumIn() != len(call.Args) {
		in.bail(call.Pos(), "call arity/variadic shape not modeled")
	}
	args := make([]reflect.Value, len(call.Args))
	for i, a := range call.Args {
		pt := ft.In(i)
		if pt.Kind() == reflect.Func {
			args[i] = stubFunc(pt)
			continue
		}
		v := in.evalExpr(a, env)
		switch {
		case v.isNil:
			args[i] = reflect.Zero(pt)
		case !v.known:
			in.bail(a.Pos(), "argument %d of %s is not statically known", i, calleeLabel(call))
		case v.rv.Type().AssignableTo(pt):
			args[i] = v.rv
		case v.rv.Type().ConvertibleTo(pt) && pt.Kind() != reflect.Interface:
			args[i] = v.rv.Convert(pt)
		default:
			in.bail(a.Pos(), "argument %d of %s has unassignable type %s", i, calleeLabel(call), v.rv.Type())
		}
	}
	res := fn.Call(args)
	out := make([]val, len(res))
	for i, r := range res {
		out[i] = knownRV(r)
	}
	return out, args
}

// stubFunc builds a no-op closure of the given func type, returning zero
// values. Stubs populate RDD compute/filter slots; plan construction never
// calls them.
func stubFunc(t reflect.Type) reflect.Value {
	return reflect.MakeFunc(t, func([]reflect.Value) []reflect.Value {
		out := make([]reflect.Value, t.NumOut())
		for i := range out {
			out[i] = reflect.Zero(t.Out(i))
		}
		return out
	})
}

// opaqueCall models a call the evaluator does not interpret (driver-side
// helpers, sort.Slice, fmt.Errorf): all results unknown. If the call or
// its arguments would build lineage, skipping it would silently lose
// stages — abort instead.
func (in *interp) opaqueCall(call *ast.CallExpr, env *scope) []val {
	if t := in.info.TypeOf(call.Fun); t != nil && typeMentionsRDD(t) {
		in.bail(call.Pos(), "%s involves the rdd API but its receiver is not statically known", calleeLabel(call))
	}
	in.guardArgs(call, env)
	n := 1
	if sig, ok := in.info.TypeOf(call.Fun).(*types.Signature); ok {
		n = sig.Results().Len()
	}
	out := make([]val, n)
	for i := range out {
		out[i] = unknown()
	}
	return out
}

// guardArgs refuses calls whose argument expressions build lineage the
// evaluator would otherwise discard (e.g. log(r.Count())).
func (in *interp) guardArgs(call *ast.CallExpr, env *scope) {
	for _, a := range call.Args {
		if _, ok := ast.Unparen(a).(*ast.FuncLit); ok {
			continue // closures are lazy; their bodies never run here
		}
		if in.containsRDDOps(a) {
			in.bail(a.Pos(), "argument of %s builds RDD lineage inside an uninterpreted call", calleeLabel(call))
		}
	}
}

// calleeLabel renders a short name for diagnostics.
func calleeLabel(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
