package extract_test

import (
	"testing"

	"chopper/internal/experiments"
	"chopper/internal/lint"
	"chopper/internal/plan/extract"
	"chopper/internal/workloads"
)

// TestKeyFactsMatchRuntime is the key-fact drift gate: for every built-in
// workload, the statically inferred partitioner placement, co-partition
// grouping, and dependency kinds must match the plans the scheduler
// actually submits, node for node.
func TestKeyFactsMatchRuntime(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the module and runs every workload")
	}
	ex := sharedExtractor(t)
	for _, name := range []string{"kmeans", "pca", "sql", "pagerank"} {
		t.Run(name, func(t *testing.T) {
			w, err := workloads.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			workloads.Shrink(w, shrink)
			bytes := w.DefaultInputBytes()

			rep, err := ex.Extract(w, bytes, experiments.DefaultParallelism)
			if err != nil {
				t.Fatalf("static extraction failed: %v", err)
			}
			for i, j := range rep.Jobs {
				if len(j.Keys) == 0 {
					t.Fatalf("job %d (%s): no key facts", i, j.Action)
				}
			}

			var keys extract.KeyCapture
			if _, _, err := experiments.RunWorkload(w, bytes, experiments.Options{OnPlan: keys.Hook()}); err != nil {
				t.Fatalf("runtime run failed: %v", err)
			}
			if drift := extract.KeyDrift(rep, keys.Jobs()); len(drift) != 0 {
				for _, d := range drift {
					t.Errorf("key-fact drift: %s", d)
				}
			}
		})
	}
}

// factByOp returns the first fact with the given op across the report's
// jobs, scanning jobs in submission order.
func factByOp(rep *extract.Report, op string) (extract.KeyFacts, bool) {
	for _, j := range rep.Jobs {
		for _, f := range j.Keys {
			if f.Op == op {
				return f, true
			}
		}
	}
	return extract.KeyFacts{}, false
}

// TestKeyFactsLattice pins the interesting lattice inferences on the real
// workloads: co-partitioned joins predicted narrow, key provenance carried
// through identity maps and filters, and the constant-key cardinality that
// cold-start seeding exploits.
func TestKeyFactsLattice(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the module")
	}
	ex := sharedExtractor(t)
	reports := map[string]*extract.Report{}
	for _, name := range []string{"pca", "sql", "pagerank"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		workloads.Shrink(w, shrink)
		rep, err := ex.Extract(w, w.DefaultInputBytes(), experiments.DefaultParallelism)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		reports[name] = rep
	}

	// pagerank: links carries the explicit partitioner through the identity
	// parseLinks map's child partitionBy, MapValues preserves it onto ranks,
	// so the join's cogroup sees both parents co-partitioned: narrow-narrow.
	cg, ok := factByOp(reports["pagerank"], "cogroup")
	if !ok {
		t.Fatal("pagerank: no cogroup fact")
	}
	if cg.DepKinds != "nn" || !cg.HasPart || cg.Scheme != "hash" {
		t.Errorf("pagerank cogroup: got deps=%q part=%v/%s, want co-partitioned narrow-narrow hash", cg.DepKinds, cg.HasPart, cg.Scheme)
	}
	mv, ok := factByOp(reports["pagerank"], "mapValues")
	if !ok {
		t.Fatal("pagerank: no mapValues fact")
	}
	if !mv.HasPart || mv.PartID != cg.PartID {
		t.Errorf("pagerank mapValues: partitioner not preserved (hasPart=%v partID=%d, cogroup partID=%d)", mv.HasPart, mv.PartID, cg.PartID)
	}

	// sql: the join takes a nil partitioner, so neither side can be
	// co-partitioned with the fresh default: shuffle-shuffle.
	cg, ok = factByOp(reports["sql"], "cogroup")
	if !ok {
		t.Fatal("sql: no cogroup fact")
	}
	if cg.DepKinds != "ss" {
		t.Errorf("sql cogroup: got deps=%q, want ss", cg.DepKinds)
	}

	// sql: the orders source's key is data-dependent (zipfIndex of the row
	// index), and filter + identity map preserve its provenance verbatim.
	src, ok := factByOp(reports["sql"], "ordersTable")
	if !ok {
		t.Fatal("sql: no ordersTable fact")
	}
	if src.Keyed != extract.KeyedYes || src.Card != lint.CardData || src.Prov == "" {
		t.Errorf("sql ordersTable: got keyed=%s card=%s prov=%q, want a data-carried key", src.Keyed, src.Card, src.Prov)
	}
	flt, ok := factByOp(reports["sql"], "filter")
	if !ok {
		t.Fatal("sql: no filter fact")
	}
	if flt.Prov != src.Prov || flt.Card != src.Card {
		t.Errorf("sql filter: provenance not preserved (got %q/%s, want %q/%s)", flt.Prov, flt.Card, src.Prov, src.Card)
	}

	// pca: the partial-mean rewrite keys every partition's contribution by
	// the constant 0 — a provably single-key reduce, the fact cold-start
	// seeding uses to shrink the reduce side to one partition.
	pm, ok := factByOp(reports["pca"], "partialMean")
	if !ok {
		t.Fatal("pca: no partialMean fact")
	}
	if pm.Keyed != extract.KeyedYes || pm.Card != lint.CardConst || pm.Bound != 1 {
		t.Errorf("pca partialMean: got keyed=%s card=%s bound=%d, want a constant single key", pm.Keyed, pm.Card, pm.Bound)
	}
}
