package extract

import (
	"chopper/internal/core"
	"chopper/internal/dag"
	"chopper/internal/lint"
	"chopper/internal/rdd"
)

// SeedHints projects the report's KeyFacts onto first-run stage signatures,
// producing the scheme hints core.Optimizer.SeedConfig consumes for
// cold-start seeding.
//
// Signatures depend on cache warmth (a chain below a materialized cached RDD
// signs as "cached[...]"), and the first run warms caches progressively: job
// N+1 sees every cached RDD that job 1..N computed. The derivation replays
// that exactly — it rebuilds each job's stage graph with a warm predicate
// tracking which cached RDDs earlier jobs materialized — so each hint's
// signature is the one the scheduler will look up when the unprofiled
// workload actually runs.
func (r *Report) SeedHints() []core.SeedHint {
	// Partitioner identities shared by two or more distinct stage signatures
	// form co-partition groups.
	sigsByPart := map[int64]map[string]bool{}
	type stageHint struct {
		sig    string
		facts  *KeyFacts
		fixed  bool
		partID int64
	}
	var stages []stageHint

	done := map[int]bool{} // cached RDD IDs materialized by earlier jobs
	seen := map[string]bool{}
	for _, j := range r.Jobs {
		warm := func(n *rdd.RDD) bool { return n.Cached && done[n.ID] }
		_, topo := dag.BuildPlan(j.Target, warm)
		byID := map[int]*KeyFacts{}
		for i := range j.Keys {
			byID[j.Keys[i].ID] = &j.Keys[i]
		}
		for _, st := range topo {
			if len(st.InDeps) == 0 {
				continue // sources carry no statically inferable bound
			}
			f := byID[st.Final.ID]
			if f == nil || !f.HasPart {
				continue
			}
			if sigsByPart[f.PartID] == nil {
				sigsByPart[f.PartID] = map[string]bool{}
			}
			sigsByPart[f.PartID][st.Signature] = true
			if seen[st.Signature] {
				continue
			}
			seen[st.Signature] = true
			stages = append(stages, stageHint{sig: st.Signature, facts: f, fixed: st.Fixed(), partID: f.PartID})
		}
		// Running the job materializes every cached RDD in its lineage.
		for _, n := range j.Target.Lineage() {
			if n.Cached {
				done[n.ID] = true
			}
		}
	}

	group := map[int64]int{}
	for _, sh := range stages {
		if len(sigsByPart[sh.partID]) < 2 {
			continue
		}
		if _, ok := group[sh.partID]; !ok {
			group[sh.partID] = len(group)
		}
	}

	out := make([]core.SeedHint, 0, len(stages))
	for _, sh := range stages {
		h := core.SeedHint{
			Signature: sh.sig,
			Scheme:    rdd.SchemeName(sh.facts.Scheme),
			Fixed:     sh.fixed,
			Group:     -1,
		}
		if g, ok := group[sh.partID]; ok {
			h.Group = g
		}
		if sh.facts.Card == lint.CardConst || sh.facts.Card == lint.CardEnum {
			h.KeyBound = sh.facts.Bound
		}
		out = append(out, h)
	}
	return out
}
