package extract_test

import (
	"sync"
	"testing"

	"chopper/internal/cluster"
	"chopper/internal/experiments"
	"chopper/internal/plan/extract"
	"chopper/internal/plan/verify"
	"chopper/internal/workloads"
)

// shrink keeps the runtime halves of the comparisons fast; the extracted
// plans are shape-identical at any physical scale.
const shrink = 8

var (
	extractorOnce sync.Once
	extractor     *extract.Extractor
	extractorErr  error
)

// sharedExtractor type-checks the workloads package once for all tests.
func sharedExtractor(t *testing.T) *extract.Extractor {
	t.Helper()
	extractorOnce.Do(func() {
		extractor, extractorErr = extract.New(".")
	})
	if extractorErr != nil {
		t.Fatalf("building extractor: %v", extractorErr)
	}
	return extractor
}

// TestStaticMatchesRuntime is the acceptance check from the issue: for
// every built-in workload, the statically extracted stage graphs must be
// isomorphic to the plans the scheduler actually submits, job for job.
func TestStaticMatchesRuntime(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the module and runs every workload")
	}
	ex := sharedExtractor(t)
	for _, name := range []string{"kmeans", "pca", "sql", "pagerank"} {
		t.Run(name, func(t *testing.T) {
			w, err := workloads.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			workloads.Shrink(w, shrink)
			bytes := w.DefaultInputBytes()

			rep, err := ex.Extract(w, bytes, experiments.DefaultParallelism)
			if err != nil {
				t.Fatalf("static extraction failed: %v", err)
			}
			if len(rep.Jobs) == 0 {
				t.Fatal("static extraction produced no jobs")
			}

			// The extracted plans must satisfy the plan-IR invariants on
			// their own, before any comparison with the runtime.
			lim := verify.DefaultLimits(cluster.PaperCluster())
			if vs := rep.Verify(lim); len(vs) != 0 {
				for _, v := range vs {
					t.Errorf("static plan violation: %s", v)
				}
			}

			var cap extract.Capture
			if _, _, err := experiments.RunWorkload(w, bytes, experiments.Options{OnPlan: cap.Hook()}); err != nil {
				t.Fatalf("runtime run failed: %v", err)
			}
			if drift := extract.Drift(rep, cap.Jobs()); len(drift) != 0 {
				for _, d := range drift {
					t.Errorf("plan drift: %s", d)
				}
			}
		})
	}
}

// TestExpectedJobCounts pins the number of actions each workload submits —
// a cheap canary that the symbolic evaluator follows the real control flow
// (loop bounds, skipped error guards) rather than bailing early.
func TestExpectedJobCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the module")
	}
	ex := sharedExtractor(t)
	want := map[string]int{
		// kmeans: 2 cached counts + 2 jobs per init round (5) + 1 per Lloyd
		// iteration (3) + wssse + dominant-count.
		"kmeans": 2 + 2*5 + 3 + 2,
		// pca: count + mean + covariance + PowerIters*Components (3*2) +
		// projection.
		"pca": 1 + 1 + 1 + 3*2 + 1,
		// sql: two aggregation counts + the join collect.
		"sql": 3,
		// pagerank: count + rank sum + top-key.
		"pagerank": 3,
	}
	for name, n := range want {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ex.Extract(w, w.DefaultInputBytes(), experiments.DefaultParallelism)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rep.Jobs) != n {
			t.Errorf("%s: extracted %d jobs, want %d", name, len(rep.Jobs), n)
		}
	}
}
