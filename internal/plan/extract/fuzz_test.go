package extract_test

import (
	"reflect"
	"testing"

	"chopper/internal/experiments"
	"chopper/internal/plan/verify"
	"chopper/internal/workloads"
)

// FuzzSymbolicExtract is the robustness contract of the symbolic
// evaluator: for any workload shape — fields zeroed, shrunk, negated,
// inflated — extraction either returns a report whose every job carries a
// well-formed, verifiable stage plan, or an ordinary error. It must never
// panic and never hang (the step cap bounds runaway loop bounds).
func FuzzSymbolicExtract(f *testing.F) {
	f.Add(uint8(0), 1, int64(21_800_000_000), 300, uint16(0), int16(0))
	f.Add(uint8(1), 6, int64(27_600_000_000), 300, uint16(1), int16(7))
	f.Add(uint8(2), 8, int64(34_500_000_000), 150, uint16(3), int16(0))
	f.Add(uint8(3), 2, int64(12_000_000_000), 7, uint16(0xff), int16(-3))
	f.Add(uint8(0), 0, int64(0), 0, uint16(0xffff), int16(63))
	// Key-flow corpus: shapes that keep the KeyFacts tracker's hardest
	// paths hot. sql joins re-keyed tables (join-after-rekey), pagerank
	// chains mapValues across a cogroup (partitioner preservation), pca
	// reduces under a constant key (cardinality collapse).
	f.Add(uint8(2), 4, int64(34_500_000_000), 96, uint16(0), int16(0))
	f.Add(uint8(3), 4, int64(12_000_000_000), 48, uint16(2), int16(5))
	f.Add(uint8(1), 4, int64(27_600_000_000), 64, uint16(0), int16(0))

	names := []string{"kmeans", "pca", "sql", "pagerank"}
	f.Fuzz(func(t *testing.T, which uint8, shrink int, inputBytes int64, par int, fieldSel uint16, fieldVal int16) {
		w, err := workloads.ByName(names[int(which)%len(names)])
		if err != nil {
			t.Fatal(err)
		}
		workloads.Shrink(w, shrink)
		perturbIntFields(w, fieldSel, int(fieldVal))
		// Bound the partition count: plan building is cheap at any width,
		// but the verifier's byte estimates are linear in stage count, not
		// partitions, so this only keeps the numbers printable.
		par %= 5000

		ex := sharedExtractor(t)
		rep, err := ex.Extract(w, inputBytes, par)
		if err != nil {
			return // unextractable shapes are allowed; panics are not
		}
		// Structural invariants only (acyclicity, shuffle boundaries,
		// co-partitioning, partitioner compatibility): resource budgets are
		// a property of the fuzzed parallelism, not of plan correctness.
		lim := verify.Limits{}
		for i, j := range rep.Jobs {
			if j.Plan == nil || len(j.Topo) == 0 {
				t.Fatalf("job %d (%s): empty plan", i, j.Action)
			}
			if j.Topo[len(j.Topo)-1] != j.Plan || !j.Plan.IsResult {
				t.Fatalf("job %d (%s): result stage is not last in topo", i, j.Action)
			}
			if len(j.Keys) == 0 {
				t.Fatalf("job %d (%s): extraction succeeded but carries no key facts", i, j.Action)
			}
			for _, v := range verify.Stages(j.Plan, j.Topo, lim) {
				t.Errorf("job %d (%s): extracted plan violates invariants: %s", i, j.Action, v)
			}
		}
	})
}

// perturbIntFields rewrites the workload's exported int fields selected by
// the fieldSel bitmask to (bounded) fieldVal, exercising degenerate loop
// bounds and dataset shapes.
func perturbIntFields(w workloads.Workload, fieldSel uint16, fieldVal int) {
	rv := reflect.ValueOf(w).Elem()
	bit := 0
	for i := 0; i < rv.NumField(); i++ {
		f := rv.Field(i)
		if f.Kind() != reflect.Int || !f.CanSet() {
			continue
		}
		if fieldSel&(1<<bit) != 0 {
			f.SetInt(int64(fieldVal % 64))
		}
		bit++
	}
}

// TestFuzzSeedsPass keeps the fuzz seeds green under plain `go test`.
func TestFuzzSeedsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the module")
	}
	w, err := workloads.ByName("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	w.(*workloads.KMeans).InitRounds = -1
	w.(*workloads.KMeans).Iterations = 0
	rep, err := sharedExtractor(t).Extract(w, 1, experiments.DefaultParallelism)
	if err != nil {
		t.Fatalf("degenerate kmeans should still extract (no init/Lloyd jobs): %v", err)
	}
	// 2 cached counts + wssse + dominant-count remain.
	if len(rep.Jobs) != 4 {
		t.Fatalf("degenerate kmeans: got %d jobs, want 4", len(rep.Jobs))
	}
}
