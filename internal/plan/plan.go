// Package plan renders RDD lineage graphs and their stage decomposition —
// the engine's analogue of Spark's explain(): a text tree for terminals and
// a Graphviz DOT document for tooling.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"chopper/internal/rdd"
)

// node is the internal graph representation used by both renderers.
type node struct {
	r        *rdd.RDD
	narrow   []*node
	shuffles []*node
}

func buildGraph(target *rdd.RDD) (*node, []*node) {
	byID := map[int]*node{}
	var order []*node
	var walk func(r *rdd.RDD) *node
	walk = func(r *rdd.RDD) *node {
		if n, ok := byID[r.ID]; ok {
			return n
		}
		n := &node{r: r}
		byID[r.ID] = n
		for _, d := range r.Deps {
			switch dep := d.(type) {
			case *rdd.NarrowDep:
				n.narrow = append(n.narrow, walk(dep.P))
			case *rdd.ShuffleDep:
				n.shuffles = append(n.shuffles, walk(dep.P))
			}
		}
		order = append(order, n)
		return n
	}
	root := walk(target)
	return root, order
}

func label(r *rdd.RDD) string {
	l := fmt.Sprintf("%s#%d x%d", r.Op, r.ID, r.NumParts)
	if r.Part != nil {
		l += " [" + r.Part.Name() + "]"
	}
	if r.Cached {
		l += " (cached)"
	}
	return l
}

// Tree renders the lineage of target as an indented text tree: narrow
// dependencies continue the branch ("- "); shuffle dependencies mark stage
// boundaries ("= "). Shared sub-lineages print once.
func Tree(target *rdd.RDD) string {
	var b strings.Builder
	seen := map[int]bool{}
	var walk func(r *rdd.RDD, depth int, viaShuffle bool)
	walk = func(r *rdd.RDD, depth int, viaShuffle bool) {
		indent := strings.Repeat("  ", depth)
		marker := "- "
		if viaShuffle {
			marker = "= "
		}
		if seen[r.ID] {
			fmt.Fprintf(&b, "%s%s%s (shared)\n", indent, marker, label(r))
			return
		}
		seen[r.ID] = true
		fmt.Fprintf(&b, "%s%s%s\n", indent, marker, label(r))
		for _, d := range r.Deps {
			switch dep := d.(type) {
			case *rdd.NarrowDep:
				walk(dep.P, depth+1, false)
			case *rdd.ShuffleDep:
				walk(dep.P, depth+1, true)
			}
		}
	}
	walk(target, 0, false)
	return b.String()
}

// DOT renders the lineage as a Graphviz digraph: solid edges for narrow
// dependencies, bold red edges for shuffles, boxes for cached RDDs.
func DOT(target *rdd.RDD, name string) string {
	_, order := buildGraph(target)
	sort.Slice(order, func(i, j int) bool { return order[i].r.ID < order[j].r.ID })
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=BT;\n", name)
	for _, n := range order {
		shape := "ellipse"
		if n.r.Cached {
			shape = "box"
		}
		fmt.Fprintf(&b, "  n%d [label=%q, shape=%s];\n", n.r.ID, label(n.r), shape)
	}
	for _, n := range order {
		for _, p := range n.narrow {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", p.r.ID, n.r.ID)
		}
		for _, p := range n.shuffles {
			fmt.Fprintf(&b, "  n%d -> n%d [color=red, style=bold, label=\"shuffle\"];\n", p.r.ID, n.r.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Stats summarizes a lineage graph.
type Stats struct {
	RDDs     int
	Shuffles int
	Cached   int
	Sources  int
	MaxDepth int
}

// Summarize computes lineage statistics for target.
func Summarize(target *rdd.RDD) Stats {
	_, order := buildGraph(target)
	st := Stats{RDDs: len(order)}
	for _, n := range order {
		st.Shuffles += len(n.shuffles)
		if n.r.Cached {
			st.Cached++
		}
		if len(n.r.Deps) == 0 {
			st.Sources++
		}
	}
	depth := map[int]int{}
	var dfs func(n *node) int
	dfs = func(n *node) int {
		if d, ok := depth[n.r.ID]; ok {
			return d
		}
		d := 0
		for _, p := range append(append([]*node{}, n.narrow...), n.shuffles...) {
			if pd := dfs(p) + 1; pd > d {
				d = pd
			}
		}
		depth[n.r.ID] = d
		return d
	}
	for _, n := range order {
		if d := dfs(n); d > st.MaxDepth {
			st.MaxDepth = d
		}
	}
	return st
}
