package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSolveLinearKnownSystem(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveLinear(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=5, x+3y=10 -> x=1, y=3.
	if !almostEq(x[0], 1, 1e-9) || !almostEq(x[1], 3, 1e-9) {
		t.Fatalf("solution = %v", x)
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := SolveLinear(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 3, 1e-12) || !almostEq(x[1], 2, 1e-12) {
		t.Fatalf("pivoted solution = %v", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Fatalf("singular system should error")
	}
}

func TestSolveLinearDimensionMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Fatalf("non-square should error")
	}
}

func TestLeastSquaresRecoversCoefficients(t *testing.T) {
	// y = 3*a + 0.5*b - 2*c with distinct magnitudes per column.
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a := rng.Float64() * 1e6
		b := rng.Float64() * 10
		c := rng.Float64()
		x = append(x, []float64{a, b, c})
		y = append(y, 3*a+0.5*b-2*c)
	}
	beta, err := LeastSquares(x, y, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(beta[0], 3, 1e-4) || !almostEq(beta[1], 0.5, 1e-3) || !almostEq(beta[2], -2, 1e-2) {
		t.Fatalf("beta = %v", beta)
	}
}

func TestLeastSquaresIllConditionedFeatures(t *testing.T) {
	// Features spanning 12 orders of magnitude (like D^3 vs sqrt(P)) must
	// still fit thanks to column scaling + ridge.
	var x [][]float64
	var y []float64
	for d := 1.0; d <= 20; d++ {
		row := []float64{d * d * d, d, math.Sqrt(d)}
		x = append(x, row)
		y = append(y, 2e-6*row[0]+5*row[1]+30*row[2])
	}
	beta, err := LeastSquares(x, y, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	// Check predictions rather than raw coefficients.
	for i, row := range x {
		pred := beta[0]*row[0] + beta[1]*row[1] + beta[2]*row[2]
		if !almostEq(pred, y[i], 1e-3*math.Abs(y[i])+1e-6) {
			t.Fatalf("prediction %d off: %v vs %v", i, pred, y[i])
		}
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil, 0); err == nil {
		t.Fatalf("no samples should error")
	}
	if _, err := LeastSquares([][]float64{{1}}, []float64{1, 2}, 0); err == nil {
		t.Fatalf("length mismatch should error")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {1}}, []float64{1, 2}, 0); err == nil {
		t.Fatalf("ragged rows should error")
	}
	if _, err := LeastSquares([][]float64{{}}, []float64{1}, 0); err == nil {
		t.Fatalf("no features should error")
	}
}

func TestMulVecAndDot(t *testing.T) {
	m := NewMatrix(2, 3)
	for j := 0; j < 3; j++ {
		m.Set(0, j, float64(j+1))
		m.Set(1, j, float64((j+1)*10))
	}
	out := m.MulVec([]float64{1, 1, 1})
	if out[0] != 6 || out[1] != 60 {
		t.Fatalf("MulVec = %v", out)
	}
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatalf("Dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatalf("Norm2 wrong")
	}
}

func TestPowerIterationDominantPair(t *testing.T) {
	// Symmetric matrix with known eigenpairs: diag(5, 1) rotated 45 deg.
	s := NewMatrix(2, 2)
	s.Set(0, 0, 3)
	s.Set(0, 1, 2)
	s.Set(1, 0, 2)
	s.Set(1, 1, 3)
	v, lambda, err := PowerIteration(s, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(lambda, 5, 1e-6) {
		t.Fatalf("lambda = %v, want 5", lambda)
	}
	if !almostEq(math.Abs(v[0]), math.Sqrt(0.5), 1e-6) {
		t.Fatalf("eigvec = %v", v)
	}
}

func TestTopEigenDeflation(t *testing.T) {
	s := NewMatrix(3, 3)
	// diag(9, 4, 1) — already diagonal, eigvals 9, 4, 1.
	s.Set(0, 0, 9)
	s.Set(1, 1, 4)
	s.Set(2, 2, 1)
	vecs, vals, err := TopEigen(s, 2, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 9, 1e-6) || !almostEq(vals[1], 4, 1e-5) {
		t.Fatalf("eigvals = %v", vals)
	}
	if !almostEq(math.Abs(vecs[0][0]), 1, 1e-5) || !almostEq(math.Abs(vecs[1][1]), 1, 1e-4) {
		t.Fatalf("eigvecs = %v", vecs)
	}
	if _, _, err := TopEigen(s, 0, 10); err == nil {
		t.Fatalf("k=0 should error")
	}
}

// Property: SolveLinear solution actually satisfies A x = b for random
// well-conditioned systems.
func TestQuickSolveResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(n)) // diagonal dominance
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64() * 10
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		ax := a.MulVec(x)
		for i := range b {
			if !almostEq(ax[i], b[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: least-squares residual of an exactly-linear dataset is ~zero.
func TestQuickLeastSquaresExactFit(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c0, c1 := rng.NormFloat64()*10, rng.NormFloat64()*10
		var x [][]float64
		var y []float64
		for i := 0; i < 30; i++ {
			a, b := rng.Float64()*100, rng.Float64()
			x = append(x, []float64{a, b})
			y = append(y, c0*a+c1*b)
		}
		beta, err := LeastSquares(x, y, 1e-10)
		if err != nil {
			return false
		}
		for i := range x {
			pred := beta[0]*x[i][0] + beta[1]*x[i][1]
			if math.Abs(pred-y[i]) > 1e-5*(1+math.Abs(y[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
