// Package linalg provides the small dense linear-algebra kernel the
// reproduction needs: Gaussian elimination with partial pivoting,
// ridge-regularized least squares via normal equations (used to fit
// CHOPPER's per-stage performance models, Eqs. 1-2 of the paper), and
// symmetric power iteration with deflation (used by the PCA workload).
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a system has no usable pivot.
var ErrSingular = errors.New("linalg: singular matrix")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: bad dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At reads element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set writes element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add adds v to element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec returns m * x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// SolveLinear solves A x = b in place copies using Gaussian elimination with
// partial pivoting. A must be square.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, fmt.Errorf("linalg: solve dimensions %dx%d vs %d", a.Rows, a.Cols, len(b))
	}
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-14 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				m.Data[col*n+j], m.Data[pivot*n+j] = m.Data[pivot*n+j], m.Data[col*n+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1.0 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Add(r, j, -f*m.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// LeastSquares fits y ~ X*beta with ridge regularization, returning beta.
// Feature columns are scaled to unit max-magnitude before solving — the
// model's features span many orders of magnitude (D^3 vs sqrt(P)) and the
// normal equations would otherwise be hopelessly ill-conditioned.
func LeastSquares(x [][]float64, y []float64, ridge float64) ([]float64, error) {
	n := len(x)
	if n == 0 {
		return nil, errors.New("linalg: no samples")
	}
	if len(y) != n {
		return nil, fmt.Errorf("linalg: %d samples vs %d targets", n, len(y))
	}
	p := len(x[0])
	if p == 0 {
		return nil, errors.New("linalg: no features")
	}
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("linalg: ragged sample %d", i)
		}
	}
	// Column scaling.
	scale := make([]float64, p)
	for j := 0; j < p; j++ {
		m := 0.0
		for i := 0; i < n; i++ {
			if v := math.Abs(x[i][j]); v > m {
				m = v
			}
		}
		if m == 0 {
			m = 1
		}
		scale[j] = m
	}
	// Normal equations on the scaled design: (Xs'Xs + ridge I) b = Xs'y.
	ata := NewMatrix(p, p)
	aty := make([]float64, p)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			xj := x[i][j] / scale[j]
			aty[j] += xj * y[i]
			for k := j; k < p; k++ {
				ata.Add(j, k, xj*x[i][k]/scale[k])
			}
		}
	}
	for j := 0; j < p; j++ {
		for k := 0; k < j; k++ {
			ata.Set(j, k, ata.At(k, j))
		}
		ata.Add(j, j, ridge)
	}
	beta, err := SolveLinear(ata, aty)
	if err != nil {
		return nil, err
	}
	for j := range beta {
		beta[j] /= scale[j]
	}
	return beta, nil
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: dot dimension mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// PowerIteration finds the dominant eigenpair of a symmetric matrix using
// deterministic power iteration.
func PowerIteration(s *Matrix, iters int) (vec []float64, val float64, err error) {
	if s.Rows != s.Cols {
		return nil, 0, errors.New("linalg: power iteration needs a square matrix")
	}
	n := s.Rows
	v := make([]float64, n)
	for i := range v {
		v[i] = 1.0 / math.Sqrt(float64(n))
	}
	for it := 0; it < iters; it++ {
		w := s.MulVec(v)
		nw := Norm2(w)
		if nw < 1e-300 {
			return nil, 0, errors.New("linalg: power iteration degenerated")
		}
		for i := range w {
			w[i] /= nw
		}
		v = w
	}
	sv := s.MulVec(v)
	return v, Dot(v, sv), nil
}

// TopEigen returns the k largest eigenpairs of a symmetric matrix via power
// iteration with deflation. Eigenvectors are returned row-wise.
func TopEigen(s *Matrix, k, iters int) (vecs [][]float64, vals []float64, err error) {
	if k <= 0 || k > s.Rows {
		return nil, nil, fmt.Errorf("linalg: k=%d out of range", k)
	}
	work := s.Clone()
	for c := 0; c < k; c++ {
		v, lambda, err := PowerIteration(work, iters)
		if err != nil {
			return nil, nil, err
		}
		vecs = append(vecs, v)
		vals = append(vals, lambda)
		// Deflate: work -= lambda v v'.
		for i := 0; i < work.Rows; i++ {
			for j := 0; j < work.Cols; j++ {
				work.Add(i, j, -lambda*v[i]*v[j])
			}
		}
	}
	return vecs, vals, nil
}
