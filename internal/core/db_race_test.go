package core

import (
	"fmt"
	"sync"
	"testing"
)

// raceObs builds a small observation batch with per-iteration variation so
// node-field updates (InputFraction, DefaultP) keep mutating under load.
func raceObs(i int) []StageObservation {
	return []StageObservation{
		{
			Signature: "stage-a", Name: "map", Partitioner: "hash",
			D: float64(1000 + i), P: 300, Texe: 1.5, Sshuffle: 100,
			IsDefault: i%2 == 0,
		},
		{
			Signature: "stage-b", Name: "reduce", ParentSigs: []string{"stage-a"},
			Partitioner: "range", D: float64(500 + i), P: 150, Texe: 0.7,
			Sshuffle: 50, IsResult: true,
		},
	}
}

// TestDBConcurrentAddRunAndReads hammers the DB's single writer path
// (AddRun) against every reader from parallel goroutines. Run under -race
// (ci.sh does) it proves the locking contract: readers only ever see
// copies, writers serialize, and nothing tears.
func TestDBConcurrentAddRunAndReads(t *testing.T) {
	db := NewDB()
	const writers, readers, iters = 4, 4, 200

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				db.AddRun("wl", 1e9, raceObs(seed*iters+i))
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for _, n := range db.Nodes("wl") {
					// Touch the mutable fields a concurrent AddRun updates.
					_ = n.InputFraction + float64(n.DefaultP)
					_ = len(n.ParentSigs)
				}
				_ = db.SamplesFor("wl", "stage-a", "hash")
				_ = db.Schemes("wl", "stage-b")
				_ = db.OccurrencesPerRun("wl", "stage-a")
				_ = db.SampleCount("wl")
				_ = db.RunCount("wl")
				snap := db.CloneWorkload("wl")
				_ = snap.SampleCount("wl")
			}
		}()
	}
	wg.Wait()

	if got, want := db.RunCount("wl"), writers*iters; got != want {
		t.Fatalf("RunCount = %d, want %d", got, want)
	}
	if got, want := db.SampleCount("wl"), 2*writers*iters; got != want {
		t.Fatalf("SampleCount = %d, want %d", got, want)
	}
}

// TestDBCopyOnRead pins the ownership contract: mutating what a reader got
// back must not leak into the DB.
func TestDBCopyOnRead(t *testing.T) {
	db := NewDB()
	db.AddRun("wl", 1e9, raceObs(0))

	nodes := db.Nodes("wl")
	nodes[0].Signature = "clobbered"
	nodes[0].ParentSigs = append(nodes[0].ParentSigs, "x")
	if got := db.Nodes("wl")[0].Signature; got != "stage-a" {
		t.Fatalf("node mutation leaked into DB: %q", got)
	}

	ss := db.SamplesFor("wl", "stage-a", "hash")
	if len(ss) != 1 {
		t.Fatalf("SamplesFor = %d samples, want 1", len(ss))
	}
	ss[0].Texe = -1
	if got := db.SamplesFor("wl", "stage-a", "hash")[0].Texe; got != 1.5 {
		t.Fatalf("sample mutation leaked into DB: %v", got)
	}

	snap := db.CloneWorkload("wl")
	snap.AddRun("wl", 1e9, raceObs(1))
	if got, want := db.SampleCount("wl"), 2; got != want {
		t.Fatalf("clone write leaked into DB: SampleCount = %d, want %d", got, want)
	}
}

// TestDBObserverOrder pins that the observer sees writes in mutation order
// even under concurrency — the property journal replay depends on.
func TestDBObserverOrder(t *testing.T) {
	db := NewDB()
	var mu sync.Mutex
	var order []string
	db.SetObserver(func(workload string, _ float64, obs []StageObservation) {
		mu.Lock()
		order = append(order, fmt.Sprintf("%s/%d", workload, len(obs)))
		mu.Unlock()
	})

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				db.AddRun("wl", 1e9, raceObs(seed*50+i))
			}
		}(w)
	}
	wg.Wait()
	if len(order) != 200 {
		t.Fatalf("observer saw %d writes, want 200", len(order))
	}
	if db.RunCount("wl") != 200 {
		t.Fatalf("RunCount = %d, want 200", db.RunCount("wl"))
	}
}
