package core

import (
	"testing"

	"chopper/internal/dag"
	"chopper/internal/metrics"
)

// TestObservationsDeepCopiesParentSigs pins the copy-on-read contract that
// chopperguard's copyescape rule enforces: the observations handed out by
// the recorder must not share backing arrays with its guarded map — a
// caller mutating a returned ParentSigs slice must not corrupt what the
// next caller sees.
func TestObservationsDeepCopiesParentSigs(t *testing.T) {
	r := NewRecorder()
	r.OnJob([]dag.StageInfo{{ID: 1, Signature: "s1", Name: "stage", ParentSigs: []string{"p0", "p1"}}})

	col := metrics.NewCollector("w", "test")
	col.BeginStage(1, "s1", "stage", "hash", 4, 0)
	col.EndStage(1, 1)

	obs := r.Observations(col, true)
	if len(obs) != 1 || len(obs[0].ParentSigs) != 2 {
		t.Fatalf("unexpected observations: %+v", obs)
	}
	obs[0].ParentSigs[0] = "mutated"

	again := r.Observations(col, true)
	if got := again[0].ParentSigs[0]; got != "p0" {
		t.Fatalf("recorder state was mutated through a returned slice: ParentSigs[0] = %q, want %q", got, "p0")
	}
}
