package core

import (
	"sync"

	"chopper/internal/dag"
	"chopper/internal/metrics"
)

// Recorder is CHOPPER's statistics collector bridge: it observes the DAG
// structure of every job (via Scheduler.OnJob) and, combined with the
// metrics collector, harvests StageObservations into the workload DB.
type Recorder struct {
	mu    sync.Mutex
	infos map[int]dag.StageInfo // stage id -> structural info
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{infos: map[int]dag.StageInfo{}}
}

// OnJob implements the scheduler hook.
func (r *Recorder) OnJob(infos []dag.StageInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, in := range infos {
		r.infos[in.ID] = in
	}
}

// Observations joins structural info with measured stage metrics.
// isDefault marks runs executed under the default configuration, whose
// partition counts become the normalization reference.
func (r *Recorder) Observations(col *metrics.Collector, isDefault bool) []StageObservation {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []StageObservation
	for _, st := range col.Stages() {
		info, ok := r.infos[st.ID]
		if !ok {
			continue
		}
		out = append(out, StageObservation{
			Signature:   st.Signature,
			Name:        st.Name,
			ParentSigs:  append([]string(nil), info.ParentSigs...),
			Fixed:       info.Fixed,
			IsJoinLike:  info.IsJoinLike,
			IsResult:    info.IsResult,
			Partitioner: st.Partitioner,
			PinKey:      info.PinKey,
			D:           float64(st.InputBytes + st.ShuffleRead),
			P:           float64(st.NumTasks),
			Texe:        st.Duration(),
			Sshuffle:    float64(st.MaxShuffle()),
			IsDefault:   isDefault,
		})
	}
	return out
}

// Harvest records a completed run into the DB.
func (r *Recorder) Harvest(db *DB, workload string, inputBytes float64, col *metrics.Collector, isDefault bool) {
	db.AddRun(workload, inputBytes, r.Observations(col, isDefault))
}

// ForceAll is a StageConfigurator that applies one spec to every stage —
// the mechanism behind CHOPPER's lightweight test runs, which sweep the
// partition count and scheme across the whole workload. Test runs override
// user-fixed partitioning (Override) so every stage's models see variation.
type ForceAll struct {
	Spec dag.SchemeSpec
}

var _ dag.StageConfigurator = (*ForceAll)(nil)

// Scheme implements dag.StageConfigurator.
func (f *ForceAll) Scheme(string) (dag.SchemeSpec, bool) {
	spec := f.Spec
	spec.Override = true
	return spec, true
}

// Refresh implements dag.StageConfigurator.
func (f *ForceAll) Refresh() {}
