package core

import (
	"fmt"
	"strings"

	"chopper/internal/rdd"
)

// SchemeViolation is one invariant breach in an optimizer emission: the
// config-level half of chopperverify (the plan-level half lives in
// internal/plan/verify and checks the stage graph the scheduler actually
// builds after applying a configuration).
type SchemeViolation struct {
	// Signature is the stage the entry targets ("" for workload-level
	// breaches).
	Signature string
	// Check names the violated invariant: "signature", "scheme", "count",
	// "fixed" or "copartition".
	Check string
	// Msg explains the breach.
	Msg string
}

// String renders the violation for logs and errors.
func (v SchemeViolation) String() string {
	if v.Signature == "" {
		return fmt.Sprintf("%s: %s", v.Check, v.Msg)
	}
	return fmt.Sprintf("%s: stage %s: %s", v.Check, v.Signature, v.Msg)
}

// VerifySchemes checks an optimizer output against the workload DAG it was
// computed from:
//
//   - every entry targets a known stage signature, exactly once;
//   - every entry carries a valid scheme and a positive count drawn from the
//     searched candidate grid (a count outside the grid means the optimizer
//     extrapolated its models instead of interpolating them);
//   - under requireCoPartition (Algorithm 3 output), stages of one
//     join/partition-dependency group agree on scheme and count, and
//     user-fixed stages are only ever retuned through an inserted
//     repartition phase.
//
// Algorithm 2's per-stage output is legitimately not co-partitioned, so its
// callers pass requireCoPartition=false.
func VerifySchemes(nodes []*StageNode, schemes []StageScheme, candidates []int, requireCoPartition bool) []SchemeViolation {
	var out []SchemeViolation
	bySig := map[string]*StageNode{}
	for _, n := range nodes {
		bySig[n.Signature] = n
	}
	grid := map[int]bool{}
	for _, c := range candidates {
		grid[c] = true
	}

	entry := map[string]StageScheme{}
	for _, s := range schemes {
		if _, dup := entry[s.Signature]; dup {
			out = append(out, SchemeViolation{Signature: s.Signature, Check: "signature",
				Msg: "duplicate configuration entry"})
			continue
		}
		entry[s.Signature] = s
		n, known := bySig[s.Signature]
		if !known {
			out = append(out, SchemeViolation{Signature: s.Signature, Check: "signature",
				Msg: "entry targets a stage signature absent from the workload DAG"})
			continue
		}
		if !rdd.ValidScheme(s.Partitioner) {
			out = append(out, SchemeViolation{Signature: s.Signature, Check: "scheme",
				Msg: fmt.Sprintf("unknown partitioner scheme %q", s.Partitioner)})
		}
		if s.NumPartitions <= 0 {
			out = append(out, SchemeViolation{Signature: s.Signature, Check: "count",
				Msg: fmt.Sprintf("non-positive partition count %d", s.NumPartitions)})
		} else if len(grid) > 0 && !grid[s.NumPartitions] {
			out = append(out, SchemeViolation{Signature: s.Signature, Check: "count",
				Msg: fmt.Sprintf("partition count %d is outside the searched candidate grid", s.NumPartitions)})
		}
		if requireCoPartition && n.Fixed && !s.InsertRepartition {
			out = append(out, SchemeViolation{Signature: s.Signature, Check: "fixed",
				Msg: "retunes a user-fixed stage without an inserted repartition phase"})
		}
	}

	if !requireCoPartition {
		return out
	}
	for _, g := range regroupDAG(nodes) {
		if len(g.members) < 2 {
			continue
		}
		var first *StageScheme
		var firstSig string
		for _, n := range g.members {
			s, ok := entry[n.Signature]
			if !ok {
				// A missing member keeps its defaults. That is only sound for
				// user-fixed stages the optimizer chose to leave alone.
				if !n.Fixed && len(entryForGroup(entry, g)) > 0 {
					out = append(out, SchemeViolation{Signature: n.Signature, Check: "copartition",
						Msg: "stage belongs to a join group that is retuned but has no entry of its own"})
				}
				continue
			}
			if first == nil {
				first = &s
				firstSig = n.Signature
				continue
			}
			if s.Partitioner != first.Partitioner || s.NumPartitions != first.NumPartitions {
				out = append(out, SchemeViolation{Signature: n.Signature, Check: "copartition",
					Msg: fmt.Sprintf("join group disagrees: %s/%d here vs %s/%d for stage %s",
						s.Partitioner, s.NumPartitions, first.Partitioner, first.NumPartitions, firstSig)})
			}
		}
	}
	return out
}

// entryForGroup returns the group members that do have an entry.
func entryForGroup(entry map[string]StageScheme, g group) []StageScheme {
	var out []StageScheme
	for _, n := range g.members {
		if s, ok := entry[n.Signature]; ok {
			out = append(out, s)
		}
	}
	return out
}

// SchemeError bundles violations into one error for strict callers.
func SchemeError(workload string, vs []SchemeViolation) error {
	if len(vs) == 0 {
		return nil
	}
	msgs := make([]string, len(vs))
	for i, v := range vs {
		msgs[i] = v.String()
	}
	return fmt.Errorf("core: configuration verification failed for %q:\n\t%s",
		workload, strings.Join(msgs, "\n\t"))
}

// checkSchemes runs VerifySchemes on an optimization pass's output and
// routes violations through OnViolation (strict by default: nil OnViolation
// turns any violation into a hard error, the behavior tests want; production
// drivers install a logging handler).
func (o *Optimizer) checkSchemes(workload string, schemes []StageScheme, requireCoPartition bool) error {
	vs := VerifySchemes(o.DB.Nodes(workload), schemes, o.Candidates, requireCoPartition)
	if len(vs) == 0 {
		return nil
	}
	if o.OnViolation != nil {
		return o.OnViolation(workload, vs)
	}
	return SchemeError(workload, vs)
}
