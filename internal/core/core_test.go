package core

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"chopper/internal/cluster"
	"chopper/internal/dag"
	"chopper/internal/metrics"
	"chopper/internal/model"
	"chopper/internal/rdd"
)

// quadSamples generates samples of texe = base + curve*(P-opt)^2 + dSlope*D,
// sshuffle = sBase + sSlope*P — exactly representable in the full basis.
func quadSamples(opt float64, base, curve float64) []StageObservation {
	var out []StageObservation
	for p := 50.0; p <= 1000; p += 50 {
		for _, d := range []float64{5e9, 10e9, 20e9} {
			out = append(out, StageObservation{
				D: d, P: p,
				Texe:     base + curve*(p-opt)*(p-opt) + 2e-9*d,
				Sshuffle: 1e7 + 2e3*p + 0.001*d,
			})
		}
	}
	return out
}

func seedStage(db *DB, wk, sig, scheme string, opt, base, curve float64, node StageObservation) {
	obs := quadSamples(opt, base, curve)
	for i := range obs {
		obs[i].Signature = sig
		obs[i].Name = node.Name
		obs[i].ParentSigs = node.ParentSigs
		obs[i].Fixed = node.Fixed
		obs[i].IsJoinLike = node.IsJoinLike
		obs[i].Partitioner = scheme
		obs[i].IsDefault = i == 0 && scheme != "range"
		if obs[i].IsDefault {
			obs[i].P = 300
		}
	}
	db.AddRun(wk, 20e9, obs)
}

func TestDBAddRunMergesNodes(t *testing.T) {
	db := NewDB()
	db.AddRun("w", 100, []StageObservation{
		{Signature: "a", Name: "map:x", Partitioner: "hash", D: 50, P: 10, Texe: 1, Sshuffle: 2},
	})
	db.AddRun("w", 100, []StageObservation{
		{Signature: "a", Name: "map:x", ParentSigs: []string{"z"}, Partitioner: "range", D: 100, P: 20, Texe: 2, Sshuffle: 3, IsDefault: true},
	})
	nodes := db.Nodes("w")
	if len(nodes) != 1 {
		t.Fatalf("nodes should merge by signature: %d", len(nodes))
	}
	n := nodes[0]
	if len(n.ParentSigs) != 1 || n.ParentSigs[0] != "z" {
		t.Fatalf("parents not merged: %v", n.ParentSigs)
	}
	if math.Abs(n.InputFraction-0.75) > 1e-9 { // mean of 0.5 and 1.0
		t.Fatalf("input fraction = %v", n.InputFraction)
	}
	if n.DefaultP != 20 || n.DefaultScheme != "range" {
		t.Fatalf("default info wrong: %+v", n)
	}
	if db.SampleCount("w") != 2 {
		t.Fatalf("sample count = %d", db.SampleCount("w"))
	}
	if got := db.Schemes("w", "a"); len(got) != 2 {
		t.Fatalf("schemes = %v", got)
	}
	if len(db.SamplesFor("w", "a", "hash")) != 1 {
		t.Fatalf("hash samples missing")
	}
	if db.SamplesFor("nope", "a", "hash") != nil || db.Nodes("nope") != nil {
		t.Fatalf("unknown workload should be empty")
	}
}

func TestDBSaveLoadRoundTrip(t *testing.T) {
	db := NewDB()
	seedStage(db, "w", "s1", "hash", 500, 60, 2e-4, StageObservation{Name: "map:a"})
	path := filepath.Join(t.TempDir(), "db.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDB(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SampleCount("w") != db.SampleCount("w") {
		t.Fatalf("samples lost: %d vs %d", got.SampleCount("w"), db.SampleCount("w"))
	}
	if len(got.Nodes("w")) != 1 || got.Nodes("w")[0].Signature != "s1" {
		t.Fatalf("nodes lost")
	}
	if _, err := LoadDB(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatalf("missing db should error")
	}
}

func TestGetStageParPicksBetterScheme(t *testing.T) {
	db := NewDB()
	// Range: lower floor, optimum at P=300. Hash: optimum at P=500, higher.
	seedStage(db, "w", "s1", "range", 300, 40, 2e-4, StageObservation{})
	seedStage(db, "w", "s1", "hash", 500, 60, 2e-4, StageObservation{})
	o := NewOptimizer(db)
	s, err := o.GetStagePar("w", "s1", 20e9)
	if err != nil {
		t.Fatal(err)
	}
	if s.Partitioner != rdd.SchemeRange {
		t.Fatalf("should pick range: %+v", s)
	}
	if s.NumPartitions < 150 || s.NumPartitions > 420 {
		t.Fatalf("optimum should be near 300 (shuffle term pulls it below): got %d", s.NumPartitions)
	}
}

func TestGetStageParHashOnlyData(t *testing.T) {
	db := NewDB()
	seedStage(db, "w", "s1", "hash", 400, 60, 2e-4, StageObservation{})
	o := NewOptimizer(db)
	s, err := o.GetStagePar("w", "s1", 10e9)
	if err != nil {
		t.Fatal(err)
	}
	if s.Partitioner != rdd.SchemeHash {
		t.Fatalf("hash-only data must yield hash: %+v", s)
	}
}

func TestGetStageParInsufficientData(t *testing.T) {
	db := NewDB()
	db.AddRun("w", 100, []StageObservation{
		{Signature: "s1", Partitioner: "hash", D: 1, P: 1, Texe: 1, Sshuffle: 1},
	})
	o := NewOptimizer(db)
	if _, err := o.GetStagePar("w", "s1", 100); err == nil {
		t.Fatalf("expected error with too few samples")
	}
}

func TestGetWorkloadParCoversTrainableStages(t *testing.T) {
	db := NewDB()
	seedStage(db, "w", "s1", "hash", 400, 60, 2e-4, StageObservation{Name: "map:a"})
	seedStage(db, "w", "s2", "hash", 200, 30, 3e-4, StageObservation{Name: "result:b", ParentSigs: []string{"s1"}})
	o := NewOptimizer(db)
	out, err := o.GetWorkloadPar("w", 20e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("expected 2 stage schemes: %+v", out)
	}
	if out[0].NumPartitions == out[1].NumPartitions {
		t.Fatalf("different stages should get different optima: %+v", out)
	}
}

func TestRegroupDAGJoins(t *testing.T) {
	nodes := []*StageNode{
		{Signature: "a"},
		{Signature: "b"},
		{Signature: "j", IsJoinLike: true, ParentSigs: []string{"a", "b"}},
		{Signature: "lone"},
	}
	groups := regroupDAG(nodes)
	if len(groups) != 2 {
		t.Fatalf("expected join group + lone stage, got %d groups", len(groups))
	}
	var joinGroup *group
	for i := range groups {
		if len(groups[i].members) == 3 {
			joinGroup = &groups[i]
		}
	}
	if joinGroup == nil {
		t.Fatalf("join subgraph not formed: %+v", groups)
	}
}

func TestGetGlobalParUnifiesJoinGroup(t *testing.T) {
	db := NewDB()
	seedStage(db, "w", "a", "hash", 400, 60, 2e-4, StageObservation{Name: "map:a"})
	seedStage(db, "w", "b", "hash", 700, 80, 2e-4, StageObservation{Name: "map:b"})
	seedStage(db, "w", "j", "hash", 500, 50, 2e-4, StageObservation{
		Name: "result:join", ParentSigs: []string{"a", "b"}, IsJoinLike: true,
	})
	o := NewOptimizer(db)
	out, err := o.GetGlobalPar("w", 20e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("want 3 schemes, got %d", len(out))
	}
	p0 := out[0].NumPartitions
	for _, s := range out {
		if s.NumPartitions != p0 || s.Partitioner != out[0].Partitioner {
			t.Fatalf("join subgraph must share one scheme: %+v", out)
		}
	}
}

func TestGlobalParFixedStageGammaGate(t *testing.T) {
	mk := func(curP float64) *Optimizer {
		db := NewDB()
		obs := quadSamples(400, 30, 5e-3)
		for i := range obs {
			obs[i].Signature = "fx"
			obs[i].Partitioner = "hash"
			obs[i].Fixed = true
			if i == 0 {
				obs[i].IsDefault = true
				obs[i].P = curP
			}
		}
		db.AddRun("w", 20e9, obs)
		return NewOptimizer(db)
	}
	// Current partitioning near the optimum: repartition not worth it.
	near := mk(420)
	out, err := near.GetGlobalPar("w", 20e9)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range out {
		if s.Signature == "fx" {
			t.Fatalf("near-optimal fixed stage should be left untouched: %+v", s)
		}
	}
	// Current partitioning terrible: repartition insertion should trigger.
	far := mk(30)
	out, err = far.GetGlobalPar("w", 20e9)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range out {
		if s.Signature == "fx" {
			if !s.InsertRepartition {
				t.Fatalf("fixed stage scheme without repartition flag: %+v", s)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("badly fixed stage should receive a repartition phase: %+v", out)
	}
}

func TestGenerateConfigValid(t *testing.T) {
	db := NewDB()
	seedStage(db, "w", "s1", "hash", 400, 60, 2e-4, StageObservation{Name: "map:a"})
	o := NewOptimizer(db)
	f, err := o.GenerateConfig("w", 20e9)
	if err != nil {
		t.Fatal(err)
	}
	if f.Workload != "w" || len(f.Entries) != 1 {
		t.Fatalf("config wrong: %+v", f)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizerErrorsWithoutData(t *testing.T) {
	o := NewOptimizer(NewDB())
	if _, err := o.GetWorkloadPar("none", 1e9); err == nil {
		t.Fatalf("no DAG info should error")
	}
	if _, err := o.GetGlobalPar("none", 1e9); err == nil {
		t.Fatalf("no DAG info should error")
	}
	if _, err := o.GenerateConfig("none", 1e9); err == nil {
		t.Fatalf("no data should error")
	}
}

func TestRecorderHarvest(t *testing.T) {
	rec := NewRecorder()
	rec.OnJob([]dag.StageInfo{
		{ID: 0, Signature: "sA", Name: "map:a", Fixed: false, IsJoinLike: false},
		{ID: 1, Signature: "sB", Name: "result:b", ParentSigs: []string{"sA"}, IsResult: true},
	})
	col := metrics.NewCollector("w", "spark")
	params := cluster.DefaultCostParams()
	col.BeginStage(0, "sA", "map:a", "input", 4, 0)
	col.AddTask(metrics.TaskMetric{StageID: 0, Start: 0, End: 10, InputBytes: 100, ShuffleWrite: 40}, params)
	col.EndStage(0, 10)
	col.BeginStage(1, "sB", "result:b", "hash", 2, 10)
	col.AddTask(metrics.TaskMetric{StageID: 1, Start: 10, End: 15, ShuffleReadLocal: 40}, params)
	col.EndStage(1, 15)

	obs := rec.Observations(col, true)
	if len(obs) != 2 {
		t.Fatalf("observations = %d", len(obs))
	}
	if obs[0].Signature != "sA" || obs[0].D != 100 || obs[0].Texe != 10 || obs[0].Sshuffle != 40 {
		t.Fatalf("obs[0] wrong: %+v", obs[0])
	}
	if obs[1].D != 40 || len(obs[1].ParentSigs) != 1 {
		t.Fatalf("obs[1] wrong: %+v", obs[1])
	}
	db := NewDB()
	rec.Harvest(db, "w", 140, col, true)
	if db.SampleCount("w") != 2 {
		t.Fatalf("harvest failed")
	}
}

func TestForceAllConfigurator(t *testing.T) {
	f := &ForceAll{Spec: dag.SchemeSpec{Scheme: rdd.SchemeHash, NumPartitions: 42}}
	spec, ok := f.Scheme("anything")
	if !ok || spec.NumPartitions != 42 {
		t.Fatalf("ForceAll should match any signature")
	}
	f.Refresh() // no-op, no panic
}

func TestCostWithSchemeFallback(t *testing.T) {
	db := NewDB()
	seedStage(db, "w", "s1", "hash", 400, 60, 2e-4, StageObservation{})
	o := NewOptimizer(db)
	// Requesting range cost where only hash data exists must fall back.
	c, err := o.costWithScheme("w", "s1", 10e9, rdd.SchemeRange, 400)
	if err != nil || c <= 0 {
		t.Fatalf("fallback failed: %v %v", c, err)
	}
}

var _ = model.FullFeatures // keep import if assertions change

func TestExplainReport(t *testing.T) {
	db := NewDB()
	seedStage(db, "w", "s1", "hash", 400, 60, 2e-4, StageObservation{Name: "map:a"})
	seedStage(db, "w", "s2", "range", 300, 40, 2e-4, StageObservation{Name: "result:b", ParentSigs: []string{"s1"}})
	o := NewOptimizer(db)
	ex, err := o.Explain("w", 20e9)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Workload != "w" || len(ex.Stages) != 2 {
		t.Fatalf("explanation shape wrong: %+v", ex)
	}
	decided := 0
	for _, s := range ex.Stages {
		if s.Decision != nil {
			decided++
			if s.Decision.NumPartitions <= 0 {
				t.Fatalf("decision without partitions: %+v", s)
			}
		}
		if s.Samples == 0 {
			t.Fatalf("stage %s should report samples", s.Signature)
		}
	}
	if decided == 0 {
		t.Fatalf("at least one stage should receive a decision")
	}
	out := ex.String()
	for _, want := range []string{"optimization report", "stage s1", "stage s2", "->"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if _, err := o.Explain("missing", 1e9); err == nil {
		t.Fatalf("unknown workload should error")
	}
}

func TestExplainFixedStageNotes(t *testing.T) {
	db := NewDB()
	obs := quadSamples(400, 30, 5e-3)
	for i := range obs {
		obs[i].Signature = "fx"
		obs[i].Name = "result:fixed"
		obs[i].Partitioner = "hash"
		obs[i].Fixed = true
		if i == 0 {
			obs[i].IsDefault = true
			obs[i].P = 420 // near-optimal: gamma gate declines
		}
	}
	db.AddRun("w", 20e9, obs)
	o := NewOptimizer(db)
	ex, err := o.Explain("w", 20e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Stages) != 1 || ex.Stages[0].Decision != nil {
		t.Fatalf("near-optimal fixed stage should keep defaults: %+v", ex.Stages)
	}
	if !strings.Contains(ex.Stages[0].Note, "gamma") {
		t.Fatalf("note should mention the gamma gate: %q", ex.Stages[0].Note)
	}
}
