package core

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// storeAt opens a store at a fresh base under dir and attaches it to the
// recovered DB.
func storeAt(t *testing.T, base string) (*Store, *DB) {
	t.Helper()
	st, db, err := OpenStore(base)
	if err != nil {
		t.Fatal(err)
	}
	st.Attach(db)
	return st, db
}

func TestStoreJournalReplay(t *testing.T) {
	base := filepath.Join(t.TempDir(), "chopperd.db")
	st, db := storeAt(t, base)
	for i := 0; i < 7; i++ {
		db.AddRun("wl", 1e9, raceObs(i))
	}
	// Simulated crash: no Snapshot, just drop the store on the floor after
	// the appends (Close only flushes; appends are already synced).
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(base); !os.IsNotExist(err) {
		t.Fatalf("snapshot written without Snapshot call: %v", err)
	}

	st2, db2 := storeAt(t, base)
	defer func() {
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if got := st2.JournalRecords(); got != 7 {
		t.Fatalf("JournalRecords = %d, want 7", got)
	}
	if got, want := db2.SampleCount("wl"), db.SampleCount("wl"); got != want {
		t.Fatalf("replayed SampleCount = %d, want %d", got, want)
	}
	if !reflect.DeepEqual(db2.Nodes("wl"), db.Nodes("wl")) {
		t.Fatal("replayed nodes differ from originals")
	}
	if !reflect.DeepEqual(db2.SamplesFor("wl", "stage-a", "hash"), db.SamplesFor("wl", "stage-a", "hash")) {
		t.Fatal("replayed samples differ from originals")
	}
}

func TestStoreSnapshotTruncatesJournal(t *testing.T) {
	base := filepath.Join(t.TempDir(), "chopperd.db")
	st, db := storeAt(t, base)
	for i := 0; i < 3; i++ {
		db.AddRun("wl", 1e9, raceObs(i))
	}
	if err := st.Snapshot(db); err != nil {
		t.Fatal(err)
	}
	if got := st.JournalRecords(); got != 0 {
		t.Fatalf("JournalRecords after snapshot = %d, want 0", got)
	}
	// Post-snapshot writes land in the fresh journal.
	db.AddRun("wl", 1e9, raceObs(3))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, db2 := storeAt(t, base)
	defer func() {
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if got := st2.JournalRecords(); got != 1 {
		t.Fatalf("JournalRecords = %d, want 1", got)
	}
	if got, want := db2.SampleCount("wl"), db.SampleCount("wl"); got != want {
		t.Fatalf("recovered SampleCount = %d, want %d", got, want)
	}
}

func TestStoreTornTailIgnored(t *testing.T) {
	base := filepath.Join(t.TempDir(), "chopperd.db")
	st, db := storeAt(t, base)
	db.AddRun("wl", 1e9, raceObs(0))
	db.AddRun("wl", 1e9, raceObs(1))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record mid-write, crash-style.
	jp := base + ".journal"
	data, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jp, data[:len(data)-25], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, db2 := storeAt(t, base)
	defer func() {
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if got := st2.JournalRecords(); got != 1 {
		t.Fatalf("JournalRecords = %d, want 1 (torn tail dropped)", got)
	}
	if got := db2.RunCount("wl"); got != 1 {
		t.Fatalf("RunCount = %d, want 1", got)
	}
}

func TestStoreTornTailAppendAfterRecovery(t *testing.T) {
	base := filepath.Join(t.TempDir(), "chopperd.db")
	st, db := storeAt(t, base)
	db.AddRun("wl", 1e9, raceObs(0))
	db.AddRun("wl", 1e9, raceObs(1))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	jp := base + ".journal"
	data, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jp, data[:len(data)-25], 0o644); err != nil {
		t.Fatal(err)
	}

	// Recovery must truncate the torn fragment, so that an append after
	// recovery starts a fresh line rather than concatenating onto it —
	// otherwise the new acknowledged record is lost, and a further restart
	// fails outright with a record-after-torn-line error.
	st2, db2 := storeAt(t, base)
	db2.AddRun("wl", 1e9, raceObs(2))
	if got := st2.JournalRecords(); got != 2 {
		t.Fatalf("JournalRecords after recovery+append = %d, want 2", got)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	st3, db3 := storeAt(t, base)
	defer func() {
		if err := st3.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if got := st3.JournalRecords(); got != 2 {
		t.Fatalf("JournalRecords = %d, want 2", got)
	}
	if got, want := db3.SampleCount("wl"), db2.SampleCount("wl"); got != want {
		t.Fatalf("replayed SampleCount = %d, want %d", got, want)
	}
	if got := db3.RunCount("wl"); got != 2 {
		t.Fatalf("RunCount = %d, want 2", got)
	}
}

// TestStoreSnapshotPreservesInterleavedAppend pins the marshal/truncate
// window: a record journaled after the snapshot marshal is absent from the
// snapshot data, so the journal rewrite must preserve it — truncating it
// would permanently lose an acknowledged write.
func TestStoreSnapshotPreservesInterleavedAppend(t *testing.T) {
	base := filepath.Join(t.TempDir(), "chopperd.db")
	st, db := storeAt(t, base)
	db.AddRun("wl", 1e9, raceObs(0))

	data, covSize, covRecs, err := st.beginSnapshot(db)
	if err != nil {
		t.Fatal(err)
	}
	// The interleaved write: lands in the journal between the marshal and
	// the snapshot commit.
	db.AddRun("wl", 1e9, raceObs(1))
	if err := st.commitSnapshot(data, covSize, covRecs); err != nil {
		t.Fatal(err)
	}
	if got := st.JournalRecords(); got != 1 {
		t.Fatalf("JournalRecords after snapshot = %d, want 1 (interleaved append preserved)", got)
	}
	want := db.SampleCount("wl")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, db2 := storeAt(t, base)
	defer func() {
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if got := db2.RunCount("wl"); got != 2 {
		t.Fatalf("recovered RunCount = %d, want 2", got)
	}
	if got := db2.SampleCount("wl"); got != want {
		t.Fatalf("recovered SampleCount = %d, want %d", got, want)
	}
	if got := st2.JournalRecords(); got != 1 {
		t.Fatalf("JournalRecords after reopen = %d, want 1", got)
	}
}

func TestStoreSnapshotAtomicPublish(t *testing.T) {
	base := filepath.Join(t.TempDir(), "chopperd.db")
	st, db := storeAt(t, base)
	db.AddRun("wl", 1e9, raceObs(0))
	if err := st.Snapshot(db); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// No temp files left behind (the epoch meta sidecar is expected).
	entries, err := os.ReadDir(filepath.Dir(base))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if name != filepath.Base(base) && name != filepath.Base(base)+".journal" && name != filepath.Base(base)+".meta" {
			t.Fatalf("stray file after snapshot: %s", name)
		}
	}
	// And the snapshot alone is loadable.
	loaded, err := LoadDB(base)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.SampleCount("wl"), db.SampleCount("wl"); got != want {
		t.Fatalf("loaded SampleCount = %d, want %d", got, want)
	}
}
