package core

import (
	"fmt"
	"sort"
	"strings"
)

// StageExplanation records why the optimizer chose a stage's scheme.
type StageExplanation struct {
	Signature     string
	Name          string
	Samples       int
	Schemes       []string // schemes with observations
	Group         int      // regrouped-DAG subgraph id (-1 = singleton)
	GroupSize     int
	Fixed         bool
	Decision      *StageScheme // nil when the stage keeps its defaults
	PredictedCost float64      // Eq. 3/4 value of the decision
	Note          string       // why no decision / special handling
}

// Explanation is the full decision report of one optimization.
type Explanation struct {
	Workload   string
	InputBytes float64
	Stages     []StageExplanation
}

// Explain runs the global optimizer and reports, per stage, the data it had
// and the decision it made — the human-readable companion to GenerateConfig.
func (o *Optimizer) Explain(workload string, workloadInput float64) (*Explanation, error) {
	nodes := o.DB.Nodes(workload)
	if len(nodes) == 0 {
		return nil, fmt.Errorf("core: no DAG information for workload %q", workload)
	}
	schemes, err := o.GetGlobalPar(workload, workloadInput)
	if err != nil {
		return nil, err
	}
	bySig := map[string]*StageScheme{}
	for i := range schemes {
		bySig[schemes[i].Signature] = &schemes[i]
	}
	groups := regroupDAG(nodes)
	groupOf := map[string]int{}
	groupSize := map[string]int{}
	for gi, g := range groups {
		for _, m := range g.members {
			if len(g.members) > 1 {
				groupOf[m.Signature] = gi
			} else {
				groupOf[m.Signature] = -1
			}
			groupSize[m.Signature] = len(g.members)
		}
	}

	ex := &Explanation{Workload: workload, InputBytes: workloadInput}
	for _, n := range nodes {
		se := StageExplanation{
			Signature: n.Signature,
			Name:      n.Name,
			Schemes:   o.DB.Schemes(workload, n.Signature),
			Group:     groupOf[n.Signature],
			GroupSize: groupSize[n.Signature],
			Fixed:     n.Fixed,
		}
		for _, scheme := range se.Schemes {
			se.Samples += len(o.DB.SamplesFor(workload, n.Signature, scheme))
		}
		if d, ok := bySig[n.Signature]; ok {
			se.Decision = d
			se.PredictedCost = d.Cost
			if d.InsertRepartition {
				se.Note = "user-fixed; repartition phase inserted (benefit > gamma)"
			} else if n.Fixed {
				se.Note = "user-fixed but retunable via override"
			}
		} else {
			switch {
			case n.Fixed:
				se.Note = "user-fixed; keeping current partitioning (benefit below gamma)"
			case se.Samples < 4:
				se.Note = "insufficient observations; keeping defaults"
			default:
				se.Note = "no trainable model; keeping defaults"
			}
		}
		ex.Stages = append(ex.Stages, se)
	}
	sort.Slice(ex.Stages, func(i, j int) bool { return ex.Stages[i].Signature < ex.Stages[j].Signature })
	return ex, nil
}

// String renders the report.
func (e *Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "optimization report: workload=%s input=%.1fGB\n", e.Workload, e.InputBytes/1e9)
	for _, s := range e.Stages {
		fmt.Fprintf(&b, "stage %s %-26s samples=%-3d schemes=%v", s.Signature, s.Name, s.Samples, s.Schemes)
		if s.Group >= 0 {
			fmt.Fprintf(&b, " group=%d(size %d)", s.Group, s.GroupSize)
		}
		if s.Fixed {
			b.WriteString(" fixed")
		}
		b.WriteString("\n")
		if s.Decision != nil {
			fmt.Fprintf(&b, "  -> %s x%d (cost %.3f vs default 1.0)", s.Decision.Partitioner, s.Decision.NumPartitions, s.PredictedCost)
			if s.Decision.InsertRepartition {
				b.WriteString(" +repartition")
			}
			b.WriteString("\n")
		}
		if s.Note != "" {
			fmt.Fprintf(&b, "  note: %s\n", s.Note)
		}
	}
	return b.String()
}
