package core

import (
	"errors"
	"strings"
	"testing"

	"chopper/internal/rdd"
)

// joinDAG builds the minimal workload DAG with a join group: two map stages
// feeding a join-like stage.
func joinDAG() []*StageNode {
	return []*StageNode{
		{Signature: "mapA"},
		{Signature: "mapB"},
		{Signature: "join", IsJoinLike: true, ParentSigs: []string{"mapA", "mapB"}},
	}
}

func scheme(sig string, p rdd.SchemeName, n int) StageScheme {
	return StageScheme{Signature: sig, Scheme: Scheme{Partitioner: p, NumPartitions: n}}
}

func TestVerifySchemes(t *testing.T) {
	grid := []int{100, 200, 300}
	agreeing := []StageScheme{
		scheme("mapA", rdd.SchemeHash, 200),
		scheme("mapB", rdd.SchemeHash, 200),
		scheme("join", rdd.SchemeHash, 200),
	}

	cases := []struct {
		name        string
		nodes       []*StageNode
		schemes     []StageScheme
		coPartition bool
		wantChecks  []string
	}{
		{
			name:    "clean per-stage output",
			nodes:   joinDAG(),
			schemes: []StageScheme{scheme("mapA", rdd.SchemeHash, 100), scheme("mapB", rdd.SchemeRange, 300)},
		},
		{
			name:        "clean co-partitioned output",
			nodes:       joinDAG(),
			schemes:     agreeing,
			coPartition: true,
		},
		{
			name:  "duplicate entry",
			nodes: joinDAG(),
			schemes: []StageScheme{
				scheme("mapA", rdd.SchemeHash, 100),
				scheme("mapA", rdd.SchemeHash, 200),
			},
			wantChecks: []string{"signature"},
		},
		{
			name:       "unknown signature",
			nodes:      joinDAG(),
			schemes:    []StageScheme{scheme("ghost", rdd.SchemeHash, 100)},
			wantChecks: []string{"signature"},
		},
		{
			name:       "invalid scheme",
			nodes:      joinDAG(),
			schemes:    []StageScheme{scheme("mapA", "round-robin", 100)},
			wantChecks: []string{"scheme"},
		},
		{
			name:       "non-positive count",
			nodes:      joinDAG(),
			schemes:    []StageScheme{scheme("mapA", rdd.SchemeHash, 0)},
			wantChecks: []string{"count"},
		},
		{
			name:       "count outside candidate grid",
			nodes:      joinDAG(),
			schemes:    []StageScheme{scheme("mapA", rdd.SchemeHash, 250)},
			wantChecks: []string{"count"},
		},
		{
			name:        "fixed stage retuned without repartition",
			nodes:       []*StageNode{{Signature: "mapA", Fixed: true}},
			schemes:     []StageScheme{scheme("mapA", rdd.SchemeHash, 100)},
			coPartition: true,
			wantChecks:  []string{"fixed"},
		},
		{
			name:    "fixed check only applies to Algorithm 3 output",
			nodes:   []*StageNode{{Signature: "mapA", Fixed: true}},
			schemes: []StageScheme{scheme("mapA", rdd.SchemeHash, 100)},
		},
		{
			name:  "join group disagreement",
			nodes: joinDAG(),
			schemes: []StageScheme{
				scheme("mapA", rdd.SchemeHash, 200),
				scheme("mapB", rdd.SchemeRange, 300),
				scheme("join", rdd.SchemeHash, 200),
			},
			coPartition: true,
			wantChecks:  []string{"copartition"},
		},
		{
			name:  "retuned group with missing non-fixed member",
			nodes: joinDAG(),
			schemes: []StageScheme{
				scheme("mapA", rdd.SchemeHash, 200),
				scheme("join", rdd.SchemeHash, 200),
			},
			coPartition: true,
			wantChecks:  []string{"copartition"},
		},
		{
			name: "partition-dependency group disagreement",
			nodes: []*StageNode{
				{Signature: "warm", PinKey: "cache1"},
				{Signature: "cold", PinKey: "cache1"},
			},
			schemes: []StageScheme{
				scheme("warm", rdd.SchemeHash, 100),
				scheme("cold", rdd.SchemeHash, 300),
			},
			coPartition: true,
			wantChecks:  []string{"copartition"},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vs := VerifySchemes(tc.nodes, tc.schemes, grid, tc.coPartition)
			got := map[string]bool{}
			for _, v := range vs {
				got[v.Check] = true
			}
			if len(tc.wantChecks) == 0 && len(vs) > 0 {
				t.Fatalf("expected clean, got %v", vs)
			}
			for _, w := range tc.wantChecks {
				if !got[w] {
					t.Errorf("missing %q violation, got %v", w, vs)
				}
			}
		})
	}
}

func TestSchemeErrorAndOnViolation(t *testing.T) {
	if err := SchemeError("w", nil); err != nil {
		t.Fatalf("SchemeError with no violations = %v", err)
	}
	vs := []SchemeViolation{{Signature: "s", Check: "count", Msg: "bad"}}
	if err := SchemeError("w", vs); err == nil || !strings.Contains(err.Error(), "count") {
		t.Fatalf("SchemeError = %v", err)
	}

	// checkSchemes: strict by default, routed through OnViolation when set.
	db := NewDB()
	o := NewOptimizer(db)
	bad := []StageScheme{scheme("ghost", rdd.SchemeHash, o.Candidates[0])}
	if err := o.checkSchemes("w", bad, false); err == nil {
		t.Fatal("nil OnViolation must make violations a hard error")
	}
	sentinel := errors.New("observed")
	var seen []SchemeViolation
	o.OnViolation = func(workload string, vs []SchemeViolation) error {
		seen = vs
		return sentinel
	}
	if err := o.checkSchemes("w", bad, false); !errors.Is(err, sentinel) {
		t.Fatalf("OnViolation result not propagated: %v", err)
	}
	if len(seen) == 0 {
		t.Fatal("OnViolation saw no violations")
	}
}
