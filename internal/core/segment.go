package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Replication support on the Store: primaries export their journal as
// position-stamped byte segments and a bootstrap image (disk snapshot +
// journal), replicas import raw segments with AppendRaw and whole images
// with InstallBootstrap. Positions are byte offsets into the journal of one
// *epoch* — the journal stream between two truncations. Every truncation
// (a snapshot commit, or an InstallBootstrap) starts a new epoch, persisted
// in a sidecar meta file, so a replica can tell "the stream I was copying
// continues" apart from "the primary compacted; my offsets are meaningless,
// bootstrap again".
//
// The invariant the protocol rests on: within one epoch, the journal is an
// append-only byte stream whose complete-line prefixes are identical on
// every node that copies it. A replica's durable position is therefore just
// its own journal size, and the torn-tail truncation in OpenStore doubles
// as crash recovery for a replica killed mid-append.

// storeMeta is the sidecar journal-epoch record (base+".meta").
type storeMeta struct {
	Epoch int64 `json:"epoch"`
}

// metaPath is the epoch sidecar file derived from the snapshot base path.
func (s *Store) metaPath() string { return s.base + ".meta" }

// loadEpoch reads the sidecar meta; a missing file is epoch 1 (the first
// stream), persisted lazily on the first change.
func loadEpoch(path string) (int64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 1, nil
	}
	if err != nil {
		return 0, fmt.Errorf("core: store: read meta: %w", err)
	}
	var m storeMeta
	if err := json.Unmarshal(data, &m); err != nil || m.Epoch <= 0 {
		return 0, fmt.Errorf("core: store: corrupt meta %s", path)
	}
	return m.Epoch, nil
}

// writeEpoch persists the epoch durably (temp + fsync + rename).
func writeEpoch(path string, epoch int64) error {
	data, err := json.Marshal(storeMeta{Epoch: epoch})
	if err != nil {
		return fmt.Errorf("core: store: marshal meta: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("core: store: meta temp: %w", err)
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("core: store: write meta: %w", werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("core: store: publish meta: %w", err)
	}
	return nil
}

// Epoch reports the journal stream identity. Segment offsets are only
// comparable between stores reporting the same epoch.
func (s *Store) Epoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// SetEpoch adopts an epoch (a replica taking the primary's stream identity
// during bootstrap) and persists it.
func (s *Store) SetEpoch(epoch int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.setEpochLocked(epoch)
}

func (s *Store) setEpochLocked(epoch int64) error {
	if epoch <= 0 {
		return fmt.Errorf("core: store: bad epoch %d", epoch)
	}
	if err := writeEpoch(s.metaPath(), epoch); err != nil {
		return err
	}
	s.epoch = epoch
	return nil
}

// JournalSize reports the acknowledged journal byte length — the position a
// replica that copied everything would be at.
func (s *Store) JournalSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// ReadSegment returns journal bytes [from, from+max) trimmed back to the
// last complete record boundary, plus the journal size at read time. An
// up-to-date replica gets (nil, size, nil). Offsets beyond the journal
// mean the caller's epoch assumption is stale — it should re-check Epoch
// and bootstrap.
func (s *Store) ReadSegment(from, max int64) ([]byte, int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 0, fmt.Errorf("core: store: segment read after close")
	}
	if from < 0 || max <= 0 {
		return nil, 0, fmt.Errorf("core: store: bad segment range from=%d max=%d", from, max)
	}
	if from > s.size {
		return nil, s.size, fmt.Errorf("core: store: segment offset %d beyond journal end %d (stale epoch?)", from, s.size)
	}
	if from == s.size {
		return nil, s.size, nil
	}
	if err := s.w.Flush(); err != nil {
		return nil, 0, fmt.Errorf("core: store: flush journal: %w", err)
	}
	want := s.size - from
	if want > max {
		want = max
	}
	buf := make([]byte, want)
	f, err := os.Open(s.journalPath())
	if err != nil {
		return nil, 0, fmt.Errorf("core: store: open journal for segment: %w", err)
	}
	n, rerr := f.ReadAt(buf, from)
	_ = f.Close() // read-only handle; nothing to flush
	if rerr != nil && int64(n) < want {
		return nil, 0, fmt.Errorf("core: store: read segment: %w", rerr)
	}
	// Trim back to the last complete line so every shipped segment is
	// record-aligned; a mid-record cut would desync the replica's line
	// parser from its byte position.
	if cut := bytes.LastIndexByte(buf, '\n'); cut < 0 {
		buf = nil
	} else {
		buf = buf[:cut+1]
	}
	return buf, s.size, nil
}

// BootstrapData exports a consistent full image: the on-disk snapshot (nil
// when none has ever been written), the complete journal, and the epoch
// they belong to. Snapshot + journal replay reconstructs the exact DB
// state, and the journal length is the position to resume segment pulls
// from. Held under the store lock so a concurrent snapshot commit cannot
// interleave between the two reads.
func (s *Store) BootstrapData() (snapshot, journal []byte, epoch int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, 0, fmt.Errorf("core: store: bootstrap after close")
	}
	if err := s.w.Flush(); err != nil {
		return nil, nil, 0, fmt.Errorf("core: store: flush journal: %w", err)
	}
	snapshot, err = os.ReadFile(s.base)
	if errors.Is(err, fs.ErrNotExist) {
		snapshot, err = nil, nil
	}
	if err != nil {
		return nil, nil, 0, fmt.Errorf("core: store: read snapshot for bootstrap: %w", err)
	}
	journal = nil
	if s.size > 0 {
		journal = make([]byte, s.size)
		f, ferr := os.Open(s.journalPath())
		if ferr != nil {
			return nil, nil, 0, fmt.Errorf("core: store: open journal for bootstrap: %w", ferr)
		}
		n, rerr := f.ReadAt(journal, 0)
		_ = f.Close() // read-only handle; nothing to flush
		if rerr != nil && int64(n) < s.size {
			return nil, nil, 0, fmt.Errorf("core: store: read journal for bootstrap: %w", rerr)
		}
	}
	return snapshot, journal, s.epoch, nil
}

// AppendRaw appends shipped journal bytes verbatim — complete
// newline-terminated records copied from a primary's stream — syncing
// before acknowledging (per SyncAppends), and returns the record count.
// The replica-side twin of Append: it keeps the local journal a
// byte-identical prefix of the primary's, which is what makes the local
// file size the replication position.
func (s *Store) AppendRaw(lines []byte) (int, error) {
	if len(lines) == 0 {
		return 0, nil
	}
	if lines[len(lines)-1] != '\n' {
		return 0, fmt.Errorf("core: store: raw append is not newline-terminated")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("core: store: append after close")
	}
	if _, err := s.w.Write(lines); err != nil {
		return 0, fmt.Errorf("core: store: write raw journal: %w", err)
	}
	if err := s.w.Flush(); err != nil {
		return 0, fmt.Errorf("core: store: flush raw journal: %w", err)
	}
	if s.SyncAppends {
		if err := s.journal.Sync(); err != nil {
			return 0, fmt.Errorf("core: store: sync raw journal: %w", err)
		}
	}
	n := bytes.Count(lines, []byte{'\n'})
	s.size += int64(len(lines))
	s.appended += n
	return n, nil
}

// InstallBootstrap replaces the store's durable state with a primary's
// bootstrap image and returns the freshly rebuilt DB (snapshot load +
// journal replay, exactly the recovery path). The snapshot lands
// atomically, the journal is rewritten and synced, and the epoch is
// adopted; afterwards the store's position equals len(journal) and segment
// pulls can resume there.
func (s *Store) InstallBootstrap(snapshot, journal []byte, epoch int64) (*DB, error) {
	if len(journal) > 0 && journal[len(journal)-1] != '\n' {
		return nil, fmt.Errorf("core: store: bootstrap journal is not newline-terminated")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("core: store: bootstrap after close")
	}
	// Publish the snapshot first: if we crash between the two writes the
	// next open sees the new snapshot with the old journal — state from a
	// torn install — but the replica re-bootstraps on the epoch mismatch
	// (the meta write below is last), so the torn state is never served.
	if len(snapshot) > 0 {
		tmp, err := os.CreateTemp(filepath.Dir(s.base), filepath.Base(s.base)+".tmp*")
		if err != nil {
			return nil, fmt.Errorf("core: store: bootstrap snapshot temp: %w", err)
		}
		_, werr := tmp.Write(snapshot)
		if werr == nil {
			werr = tmp.Sync()
		}
		if cerr := tmp.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			_ = os.Remove(tmp.Name())
			return nil, fmt.Errorf("core: store: write bootstrap snapshot: %w", werr)
		}
		if err := os.Rename(tmp.Name(), s.base); err != nil {
			_ = os.Remove(tmp.Name())
			return nil, fmt.Errorf("core: store: publish bootstrap snapshot: %w", err)
		}
	} else if err := os.Remove(s.base); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("core: store: drop stale snapshot: %w", err)
	}
	if err := s.journal.Close(); err != nil {
		return nil, fmt.Errorf("core: store: close journal: %w", err)
	}
	f, err := os.OpenFile(s.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("core: store: rewrite journal: %w", err)
	}
	_, werr := f.Write(journal)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return nil, fmt.Errorf("core: store: write bootstrap journal: %w", werr)
	}
	s.journal, err = os.OpenFile(s.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("core: store: reopen journal: %w", err)
	}
	s.w = bufio.NewWriter(s.journal)
	s.size = int64(len(journal))
	s.appended = 0

	// Rebuild the DB exactly the way recovery would: snapshot, then replay.
	db := NewDB()
	if len(snapshot) > 0 {
		loaded := NewDB()
		if err := json.Unmarshal(snapshot, loaded); err != nil {
			return nil, fmt.Errorf("core: store: unmarshal bootstrap snapshot: %w", err)
		}
		normalizeDB(loaded)
		db = loaded
	}
	replayed, off, err := replayJournal(s.journalPath(), db)
	if err != nil {
		return nil, fmt.Errorf("core: store: replay bootstrap journal: %w", err)
	}
	if off != s.size {
		return nil, fmt.Errorf("core: store: bootstrap journal has a torn tail (%d of %d bytes replayable)", off, s.size)
	}
	s.replayed, s.appended = replayed, 0
	if err := s.setEpochLocked(epoch); err != nil {
		return nil, err
	}
	return db, nil
}

// ParseSegment decodes the complete records of a record-aligned journal
// segment. It returns the records plus the byte length consumed; a
// trailing partial line (which ReadSegment never produces, but a cut-off
// transfer can) is left unconsumed rather than failing.
func ParseSegment(data []byte) (recs []JournalEntry, consumed int64, err error) {
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break
		}
		line := data[:nl+1]
		data = data[nl+1:]
		body := bytes.TrimSpace(line)
		if len(body) == 0 {
			consumed += int64(len(line))
			continue
		}
		var rec journalRecord
		if uerr := json.Unmarshal(body, &rec); uerr != nil {
			return nil, consumed, fmt.Errorf("core: store: corrupt segment record: %w", uerr)
		}
		recs = append(recs, JournalEntry{Workload: rec.Workload, InputBytes: rec.InputBytes, Obs: rec.Obs})
		consumed += int64(len(line))
	}
	return recs, consumed, nil
}

// JournalEntry is one decoded journal record, the unit a replica applies.
type JournalEntry struct {
	Workload   string
	InputBytes float64
	Obs        []StageObservation
}
