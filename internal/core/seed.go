package core

import (
	"fmt"

	"chopper/internal/config"
	"chopper/internal/rdd"
)

// SeedHint is one statically inferred scheme hint for a stage, produced by
// the chopperkey analysis (internal/plan/extract) without ever running or
// profiling the workload: the partitioner family the stage will use, whether
// its partitioning is user-pinned, which co-partition group it belongs to,
// and — when the key expression is provably constant or enum-small — an
// upper bound on the number of distinct keys its shuffle can carry.
type SeedHint struct {
	Signature string
	Scheme    rdd.SchemeName

	// Fixed marks stages whose partitioning the workload pins explicitly
	// (PartitionBy and friends); seeding never overrides those.
	Fixed bool

	// Group is the co-partition group ordinal (-1 when the stage shares its
	// partitioner identity with no other stage). Members of one group must
	// receive one partition count, or a narrow co-partitioned join would
	// silently widen.
	Group int

	// KeyBound is a provable upper bound on distinct keys (0 = unbounded).
	// Partitions beyond the bound are guaranteed empty.
	KeyBound int
}

// SeedConfig builds a first-run configuration from static hints alone — the
// cold-start path for workloads the DB has never profiled. Unlike
// GenerateConfig it has no cost models to consult, so it only acts where the
// hints carry proof: a stage whose key space is bounded gets exactly that
// many partitions (capped at the default parallelism), and co-partition
// groups move together or not at all. Everything else keeps the default
// plan, so seeding is never worse than doing nothing.
func (o *Optimizer) SeedConfig(workload string, hints []SeedHint) (*config.File, error) {
	cap := o.DefaultParallelism
	if cap <= 0 {
		cap = 300
	}

	// A group is seedable only if no member is pinned and at least one
	// member carries a key bound; all members then share the tightest bound.
	groupBound := map[int]int{}
	groupPinned := map[int]bool{}
	for _, h := range hints {
		if h.Group < 0 {
			continue
		}
		if h.Fixed {
			groupPinned[h.Group] = true
		}
		if h.KeyBound > 0 {
			if b, ok := groupBound[h.Group]; !ok || h.KeyBound < b {
				groupBound[h.Group] = h.KeyBound
			}
		}
	}

	f := &config.File{Workload: workload}
	for _, h := range hints {
		if h.Fixed || h.Signature == "" {
			continue
		}
		bound := h.KeyBound
		if h.Group >= 0 {
			if groupPinned[h.Group] {
				continue
			}
			bound = groupBound[h.Group]
		}
		if bound <= 0 {
			continue
		}
		n := bound
		if n > cap {
			n = cap
		}
		scheme := h.Scheme
		if !rdd.ValidScheme(scheme) {
			scheme = rdd.SchemeHash
		}
		f.Set(config.Entry{Signature: h.Signature, Scheme: scheme, NumPartitions: n})
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("core: seed config for %s: %w", workload, err)
	}
	return f, nil
}
