package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// segObs builds a distinguishable observation set.
func segObs(i int) []StageObservation {
	return []StageObservation{{
		Signature: "sig", Name: "stage", Partitioner: "hash",
		D: 1e6 * float64(i+1), P: 100, Texe: float64(i + 1), Sshuffle: 1e3,
	}}
}

// mustMarshal marshals a DB snapshot or fails the test.
func mustMarshal(t *testing.T, db *DB) []byte {
	t.Helper()
	data, err := db.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestReadSegmentAligned(t *testing.T) {
	base := filepath.Join(t.TempDir(), "p.db")
	st, db, err := OpenStore(base)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	st.Attach(db)
	for i := 0; i < 5; i++ {
		db.AddRun("wl", 1e9, segObs(i))
	}
	size := st.JournalSize()
	if size == 0 {
		t.Fatal("no journal bytes after appends")
	}

	// Tiny max: every chunk must end on a record boundary, and chaining
	// chunks reproduces the whole journal byte-for-byte.
	var got []byte
	for pos := int64(0); pos < size; {
		seg, end, err := st.ReadSegment(pos, 64)
		if err != nil {
			t.Fatal(err)
		}
		if end != size {
			t.Fatalf("journal size moved: %d != %d", end, size)
		}
		if len(seg) == 0 {
			// max smaller than one record: widen and retry.
			if seg, _, err = st.ReadSegment(pos, size); err != nil {
				t.Fatal(err)
			}
		}
		if seg[len(seg)-1] != '\n' {
			t.Fatalf("segment not record-aligned: %q", seg)
		}
		got = append(got, seg...)
		pos += int64(len(seg))
	}
	whole, _, err := st.ReadSegment(0, size)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, whole) {
		t.Fatal("chunked segments differ from whole journal")
	}
	// Up-to-date reader gets an empty segment; a beyond-end offset errors.
	if seg, _, err := st.ReadSegment(size, 1<<20); err != nil || len(seg) != 0 {
		t.Fatalf("read at end: seg=%d err=%v", len(seg), err)
	}
	if _, _, err := st.ReadSegment(size+1, 1); err == nil {
		t.Fatal("offset beyond journal end must error")
	}
}

func TestEpochBumpsOnSnapshot(t *testing.T) {
	base := filepath.Join(t.TempDir(), "p.db")
	st, db, err := OpenStore(base)
	if err != nil {
		t.Fatal(err)
	}
	st.Attach(db)
	if got := st.Epoch(); got != 1 {
		t.Fatalf("fresh store epoch = %d, want 1", got)
	}
	db.AddRun("wl", 1e9, segObs(0))
	if err := st.Snapshot(db); err != nil {
		t.Fatal(err)
	}
	if got := st.Epoch(); got != 2 {
		t.Fatalf("epoch after snapshot = %d, want 2", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// The epoch survives a reopen via the meta sidecar.
	st2, _, err := OpenStore(base)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if got := st2.Epoch(); got != 2 {
		t.Fatalf("reopened epoch = %d, want 2", got)
	}
}

func TestAppendRawTracksPositionAndReplays(t *testing.T) {
	dir := t.TempDir()
	pst, pdb, err := OpenStore(filepath.Join(dir, "p.db"))
	if err != nil {
		t.Fatal(err)
	}
	pst.Attach(pdb)
	for i := 0; i < 3; i++ {
		pdb.AddRun("wl", 1e9, segObs(i))
	}
	seg, _, err := pst.ReadSegment(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := pst.Close(); err != nil {
		t.Fatal(err)
	}

	rbase := filepath.Join(dir, "r.db")
	rst, rdb, err := OpenStore(rbase)
	if err != nil {
		t.Fatal(err)
	}
	n, err := rst.AppendRaw(seg)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("AppendRaw counted %d records, want 3", n)
	}
	if got := rst.JournalSize(); got != int64(len(seg)) {
		t.Fatalf("replica position %d != segment length %d", got, len(seg))
	}
	recs, consumed, err := ParseSegment(seg)
	if err != nil || consumed != int64(len(seg)) {
		t.Fatalf("ParseSegment: consumed %d err %v", consumed, err)
	}
	for _, rec := range recs {
		rdb.AddRun(rec.Workload, rec.InputBytes, rec.Obs)
	}
	if err := rst.Close(); err != nil {
		t.Fatal(err)
	}
	// A reopened replica recovers the same state from its raw-appended
	// journal alone.
	rst2, rdb2, err := OpenStore(rbase)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := rst2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if !bytes.Equal(mustMarshal(t, rdb), mustMarshal(t, rdb2)) {
		t.Fatal("replayed replica state differs from applied state")
	}
	if !bytes.Equal(mustMarshal(t, rdb2), mustMarshal(t, pdb)) {
		t.Fatal("replica state differs from primary state")
	}
}

func TestInstallBootstrapRebuildsExactState(t *testing.T) {
	dir := t.TempDir()
	pst, pdb, err := OpenStore(filepath.Join(dir, "p.db"))
	if err != nil {
		t.Fatal(err)
	}
	pst.Attach(pdb)
	// Snapshot-covered records plus journal-only ones: the bootstrap image
	// must carry both.
	pdb.AddRun("wl", 1e9, segObs(0))
	pdb.AddRun("wl", 1e9, segObs(1))
	if err := pst.Snapshot(pdb); err != nil {
		t.Fatal(err)
	}
	pdb.AddRun("wl", 1e9, segObs(2))
	snap, journal, epoch, err := pst.BootstrapData()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) == 0 || len(journal) == 0 {
		t.Fatalf("bootstrap image incomplete: snap=%d journal=%d", len(snap), len(journal))
	}
	if err := pst.Close(); err != nil {
		t.Fatal(err)
	}

	rst, _, err := OpenStore(filepath.Join(dir, "r.db"))
	if err != nil {
		t.Fatal(err)
	}
	rdb, err := rst.InstallBootstrap(snap, journal, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustMarshal(t, rdb), mustMarshal(t, pdb)) {
		t.Fatal("bootstrapped replica state differs from primary")
	}
	if got := rst.Epoch(); got != epoch {
		t.Fatalf("replica epoch %d, want %d", got, epoch)
	}
	if got := rst.JournalSize(); got != int64(len(journal)) {
		t.Fatalf("replica position %d != bootstrap journal length %d", got, len(journal))
	}
	if err := rst.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFracSamplesSurviveSnapshotRoundTrip(t *testing.T) {
	base := filepath.Join(t.TempDir(), "p.db")
	st, db, err := OpenStore(base)
	if err != nil {
		t.Fatal(err)
	}
	st.Attach(db)
	db.AddRun("wl", 1e9, segObs(0))
	db.AddRun("wl", 1e9, segObs(1))
	if err := st.Snapshot(db); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	db.SetObserver(nil) // the store is gone; keep mutating the in-memory copy
	st2, db2, err := OpenStore(base)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	// The third run lands on both with identical accumulation weights only
	// if FracSamples came through the snapshot.
	db.AddRun("wl", 1e9, segObs(2))
	db2.AddRun("wl", 1e9, segObs(2))
	a, b := db.Nodes("wl")[0], db2.Nodes("wl")[0]
	if a.FracSamples != b.FracSamples || a.InputFraction != b.InputFraction {
		t.Fatalf("accumulation diverged after snapshot round trip: (%d, %v) vs (%d, %v)",
			a.FracSamples, a.InputFraction, b.FracSamples, b.InputFraction)
	}

	// A duplicate raw delivery of an already-present suffix must be
	// detectable by position arithmetic (the replica's dedupe contract):
	// ParseSegment on a half-open window never double-counts.
	if _, err := os.Stat(base + ".meta"); err != nil {
		t.Fatalf("epoch meta sidecar missing: %v", err)
	}
}
