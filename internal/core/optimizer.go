package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"chopper/internal/config"
	"chopper/internal/model"
	"chopper/internal/rdd"
)

// Scheme is an optimizer decision for one stage.
type Scheme struct {
	Partitioner   rdd.SchemeName
	NumPartitions int
	Cost          float64
}

// StageScheme binds a decision to a stage signature.
type StageScheme struct {
	Signature string
	Scheme
	InsertRepartition bool
}

// Optimizer computes partition schemes from the workload DB — the paper's
// partition optimizer component.
type Optimizer struct {
	DB *DB

	// Alpha and Beta weight execution time versus shuffle volume in the
	// cost objective (Eq. 3); the paper defaults both to 0.5.
	Alpha, Beta float64

	// Gamma is the benefit factor required before inserting an extra
	// repartition phase for a user-fixed stage (the paper uses 1.5).
	Gamma float64

	// DefaultParallelism is the reference P used for cost normalization
	// (the vanilla configuration, 300 in the paper's evaluation).
	DefaultParallelism int

	// Candidates is the searched grid of partition counts.
	Candidates []int

	// Features selects the model basis (FullFeatures reproduces the paper).
	Features model.FeatureSet

	// Ridge is the fit regularization strength.
	Ridge float64

	// RepartitionPassFraction estimates the cost of an inserted repartition
	// phase as a fraction of the optimized stage's cost: one extra
	// read-shuffle-write pass over the data without the stage's compute.
	RepartitionPassFraction float64

	// ShuffleBytesPerSec converts shuffle volume into time for the subgraph
	// objective, so a kilobyte-scale shuffle cannot outvote minute-scale
	// compute when both are normalized (aggregate cluster bandwidth).
	ShuffleBytesPerSec float64

	// OnViolation handles configuration-verifier findings (VerifySchemes runs
	// after every optimization pass). nil is strict: any violation becomes a
	// hard error from the pass that produced it. Production drivers install a
	// handler that logs and returns nil to keep going.
	OnViolation func(workload string, vs []SchemeViolation) error
}

// NewOptimizer returns an optimizer with the paper's default settings.
func NewOptimizer(db *DB) *Optimizer {
	var candidates []int
	for p := 10; p <= 2000; p += 10 {
		candidates = append(candidates, p)
	}
	return &Optimizer{
		DB:                      db,
		Alpha:                   0.5,
		Beta:                    0.5,
		Gamma:                   1.5,
		DefaultParallelism:      300,
		Candidates:              candidates,
		Features:                model.FullFeatures,
		Ridge:                   1e-6,
		RepartitionPassFraction: 0.5,
		ShuffleBytesPerSec:      3e9,
	}
}

// referenceFor returns the Eq. 3 normalization references of a stage: the
// predicted texe and sshuffle of the DEFAULT configuration (the default
// scheme at the default parallelism). Both partitioner candidates of
// Algorithm 1 normalize against this one reference, so their costs are
// directly comparable.
func (o *Optimizer) referenceFor(workload, sig string, d float64, defaultScheme string) (refT, refS float64, err error) {
	order := []string{defaultScheme, "hash", "input", "range"}
	var lastErr error
	for _, scheme := range order {
		if scheme == "" {
			continue
		}
		sm, err := o.fitScheme(workload, sig, scheme, d)
		if err != nil {
			lastErr = err
			continue
		}
		p := float64(o.DefaultParallelism)
		return sm.Texe.Predict(d, p), sm.Shuffle.Predict(d, p), nil
	}
	return 0, 0, lastErr
}

// fitScheme fits the (texe, sshuffle) models of one (stage, scheme) pair
// for decisions at stage input size d. Samples far from d are excluded when
// enough local ones exist: the additive basis has no D-P interaction terms,
// so mixing distant sizes distorts the partition-count profile at the
// operating point (the paper's model shares this coarseness; CHOPPER
// decides "based on the current statistics").
func (o *Optimizer) fitScheme(workload, sig, scheme string, d float64) (*model.StageModels, error) {
	samples := o.DB.SamplesFor(workload, sig, scheme)
	if d > 0 {
		var local []model.Sample
		for _, s := range samples {
			if s.D >= 0.55*d && s.D <= 1.8*d {
				local = append(local, s)
			}
		}
		if len(local) >= model.MinSamples {
			samples = local
		}
	}
	if len(samples) < model.MinSamples {
		return nil, fmt.Errorf("core: stage %s has %d %q samples, need %d",
			sig, len(samples), scheme, model.MinSamples)
	}
	return model.FitStage(samples, o.Features, o.Ridge)
}

// GetStagePar implements Algorithm 1: it trains the range- and hash-
// partitioner models of a stage and returns the partitioner and count with
// the minimum predicted cost for input size d.
func (o *Optimizer) GetStagePar(workload, sig string, d float64) (Scheme, error) {
	type attempt struct {
		name rdd.SchemeName
		db   string
	}
	attempts := []attempt{
		{rdd.SchemeRange, "range"},
		{rdd.SchemeHash, "hash"},
		// Source stages record under "input"; their decision is count-only
		// and reported as hash (the scheduler ignores the scheme for
		// sources).
		{rdd.SchemeHash, "input"},
	}
	defScheme := ""
	if n := o.nodeFor(workload, sig); n != nil {
		defScheme = n.DefaultScheme
	}
	refT, refS, refErr := o.referenceFor(workload, sig, d, defScheme)
	if refErr != nil {
		return Scheme{}, fmt.Errorf("core: GetStagePar(%s): %w", sig, refErr)
	}
	best := Scheme{Cost: math.Inf(1)}
	var lastErr error
	for _, at := range attempts {
		sm, err := o.fitScheme(workload, sig, at.db, d)
		if err != nil {
			lastErr = err
			continue
		}
		cands := o.candidatesWithin(workload, sig, at.db)
		p, cost, err := sm.MinimizeCostWithRef(d, cands, refT, refS, o.Alpha, o.Beta)
		if err != nil {
			lastErr = err
			continue
		}
		if cost < best.Cost {
			best = Scheme{Partitioner: at.name, NumPartitions: p, Cost: cost}
		}
	}
	if best.NumPartitions == 0 {
		if lastErr == nil {
			lastErr = errors.New("no samples")
		}
		return Scheme{}, fmt.Errorf("core: GetStagePar(%s): %w", sig, lastErr)
	}
	return best, nil
}

// candidatesWithin restricts the search grid to the partition-count range
// actually observed for (sig, scheme): the cubic basis extrapolates wildly
// outside the sampled range (predictions clamp to zero and look free).
func (o *Optimizer) candidatesWithin(workload, sig, scheme string) []int {
	samples := o.DB.SamplesFor(workload, sig, scheme)
	lo, hi := math.Inf(1), 0.0
	for _, s := range samples {
		if s.P < lo {
			lo = s.P
		}
		if s.P > hi {
			hi = s.P
		}
	}
	if hi == 0 {
		return o.Candidates
	}
	var out []int
	for _, c := range o.Candidates {
		if float64(c) >= lo && float64(c) <= hi {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return o.Candidates
	}
	return out
}

// nodeFor looks up the DAG node of a stage signature.
func (o *Optimizer) nodeFor(workload, sig string) *StageNode {
	for _, n := range o.DB.Nodes(workload) {
		if n.Signature == sig {
			return n
		}
	}
	return nil
}

// costWithScheme evaluates Eq. 3 for a stage forced to a given scheme and
// count, falling back across schemes when the requested one has no models.
// Normalization uses the stage's single default-configuration reference.
func (o *Optimizer) costWithScheme(workload, sig string, d float64, scheme rdd.SchemeName, p int) (float64, error) {
	defScheme := ""
	if n := o.nodeFor(workload, sig); n != nil {
		defScheme = n.DefaultScheme
	}
	refT, refS, err := o.referenceFor(workload, sig, d, defScheme)
	if err != nil {
		return 0, err
	}
	order := []string{string(scheme), "hash", "range", "input"}
	var lastErr error
	for _, dbScheme := range order {
		sm, err := o.fitScheme(workload, sig, dbScheme, d)
		if err != nil {
			lastErr = err
			continue
		}
		return model.Cost(sm.Texe.Predict(d, float64(p)), sm.Shuffle.Predict(d, float64(p)), refT, refS, o.Alpha, o.Beta), nil
	}
	return 0, lastErr
}

// stageInput projects the workload input size onto one stage.
func stageInput(n *StageNode, workloadInput float64) float64 {
	d := n.InputFraction * workloadInput
	if d <= 0 {
		d = workloadInput
	}
	return d
}

// GetWorkloadPar implements Algorithm 2: the naive per-stage optimum,
// ignoring inter-stage dependencies.
func (o *Optimizer) GetWorkloadPar(workload string, workloadInput float64) ([]StageScheme, error) {
	nodes := o.DB.Nodes(workload)
	if len(nodes) == 0 {
		return nil, fmt.Errorf("core: no DAG information for workload %q", workload)
	}
	var out []StageScheme
	for _, n := range nodes {
		s, err := o.GetStagePar(workload, n.Signature, stageInput(n, workloadInput))
		if err != nil {
			continue // stages without enough data keep their defaults
		}
		out = append(out, StageScheme{Signature: n.Signature, Scheme: s})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no stage of %q has enough samples", workload)
	}
	if err := o.checkSchemes(workload, out, false); err != nil {
		return nil, err
	}
	return out, nil
}

// group is a regrouped-DAG node: one stage or a join-connected subgraph.
type group struct {
	members []*StageNode
}

// regroupDAG implements the grouping step of Algorithm 3: walking from the
// end stages toward the sources, stages connected by join/cogroup
// dependencies or partition dependencies (shared cached-RDD partitioning)
// collapse into subgraphs (union-find over signatures).
func regroupDAG(nodes []*StageNode) []group {
	parent := map[string]string{}
	var find func(string) string
	find = func(s string) string {
		p, ok := parent[s]
		if !ok || p == s {
			parent[s] = s
			return s
		}
		root := find(p)
		parent[s] = root
		return root
	}
	union := func(a, b string) { parent[find(a)] = find(b) }

	for i := len(nodes) - 1; i >= 0; i-- {
		n := nodes[i]
		if !n.IsJoinLike {
			continue
		}
		for _, ps := range n.ParentSigs {
			union(ps, n.Signature)
		}
	}
	// Partition dependencies: stages whose task counts are all determined by
	// one cached RDD's partitioning must share a scheme (the scheduler will
	// only honor the materializing stage's entry anyway).
	byPin := map[string]string{}
	for _, n := range nodes {
		if n.PinKey == "" {
			continue
		}
		if first, ok := byPin[n.PinKey]; ok {
			union(n.Signature, first)
		} else {
			byPin[n.PinKey] = n.Signature
		}
	}
	byRoot := map[string][]*StageNode{}
	var roots []string
	for _, n := range nodes {
		r := find(n.Signature)
		if _, ok := byRoot[r]; !ok {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], n)
	}
	out := make([]group, 0, len(roots))
	for _, r := range roots {
		out = append(out, group{members: byRoot[r]})
	}
	return out
}

// memberModels fits the best-available models for one subgraph member under
// a preferred scheme, with cross-scheme fallback.
// It also reports which DB scheme the fit used, so candidate clamping can
// look at the same sample set.
func (o *Optimizer) memberModels(workload, sig string, scheme rdd.SchemeName, d float64) (*model.StageModels, string, error) {
	order := []string{string(scheme), "hash", "range", "input"}
	var lastErr error
	for _, dbScheme := range order {
		sm, err := o.fitScheme(workload, sig, dbScheme, d)
		if err == nil {
			return sm, dbScheme, nil
		}
		lastErr = err
	}
	return nil, "", lastErr
}

// getSubGraphPar finds the single scheme minimizing the subgraph's total
// cost (the paper's getSubGraphPar). The objective is Eq. 3 evaluated at
// group granularity: summed predicted execution time and shuffle volume
// over all members, normalized by the group's totals under the default
// configuration — so one stage's dominance is weighted by its actual
// magnitude, not flattened by per-stage normalization.
func (o *Optimizer) getSubGraphPar(workload string, g group, workloadInput float64) (Scheme, error) {
	type member struct {
		n        *StageNode
		d        float64
		w        float64 // executions of this stage per workload run
		sm       *model.StageModels
		dbScheme string
	}
	best := Scheme{Cost: math.Inf(1)}
	for _, scheme := range []rdd.SchemeName{rdd.SchemeHash, rdd.SchemeRange} {
		var members []member
		for _, n := range g.members {
			d := stageInput(n, workloadInput)
			sm, dbScheme, err := o.memberModels(workload, n.Signature, scheme, d)
			if err != nil {
				continue
			}
			members = append(members, member{
				n: n, d: d,
				w:        float64(o.DB.OccurrencesPerRun(workload, n.Signature)),
				sm:       sm,
				dbScheme: dbScheme,
			})
		}
		if len(members) == 0 {
			continue
		}
		// The group objective works in time units: shuffle bytes convert to
		// seconds so each term's weight reflects its actual magnitude.
		bw := o.ShuffleBytesPerSec
		if bw <= 0 {
			bw = 3e9
		}
		var refCost float64
		for _, m := range members {
			refCost += m.w * (o.Alpha*m.sm.Texe.Predict(m.d, float64(o.DefaultParallelism)) +
				o.Beta*m.sm.Shuffle.Predict(m.d, float64(o.DefaultParallelism))/bw)
		}
		// Intersect the candidate grid with each member's sampled range
		// (the range of the samples its model was actually fitted on).
		cands := o.Candidates
		for _, m := range members {
			cands = intersect(cands, o.candidatesWithin(workload, m.n.Signature, m.dbScheme))
		}
		if len(cands) == 0 {
			cands = o.Candidates
		}
		for _, p := range cands {
			var total float64
			for _, m := range members {
				total += m.w * (o.Alpha*m.sm.Texe.Predict(m.d, float64(p)) +
					o.Beta*m.sm.Shuffle.Predict(m.d, float64(p))/bw)
			}
			c := total
			if refCost > 0 {
				c = total / refCost
			}
			if c < best.Cost {
				best = Scheme{Partitioner: scheme, NumPartitions: p, Cost: c}
			}
		}
	}
	if best.NumPartitions == 0 {
		return Scheme{}, fmt.Errorf("core: subgraph has no trainable member")
	}
	return best, nil
}

func intersect(a, b []int) []int {
	inB := map[int]bool{}
	for _, x := range b {
		inB[x] = true
	}
	var out []int
	for _, x := range a {
		if inB[x] {
			out = append(out, x)
		}
	}
	return out
}

// GetGlobalPar implements Algorithm 3: it regroups the DAG over join
// dependencies, computes per-node or per-subgraph schemes, and for
// user-fixed stages decides whether inserting an extra repartition phase is
// worth it (benefit factor Gamma).
func (o *Optimizer) GetGlobalPar(workload string, workloadInput float64) ([]StageScheme, error) {
	nodes := o.DB.Nodes(workload)
	if len(nodes) == 0 {
		return nil, fmt.Errorf("core: no DAG information for workload %q", workload)
	}
	var out []StageScheme
	for _, g := range regroupDAG(nodes) {
		var sch Scheme
		var err error
		if len(g.members) == 1 {
			n := g.members[0]
			sch, err = o.GetStagePar(workload, n.Signature, stageInput(n, workloadInput))
		} else {
			sch, err = o.getSubGraphPar(workload, g, workloadInput)
		}
		if err != nil {
			continue
		}
		for _, n := range g.members {
			ss := StageScheme{Signature: n.Signature, Scheme: sch}
			if n.Fixed {
				ok, repart := o.repartitionBeneficial(workload, n, workloadInput, sch)
				if !ok {
					continue // keep the user's partitioning untouched
				}
				ss.InsertRepartition = repart
			}
			out = append(out, ss)
		}
	}
	// An empty result is legal: every trainable stage may be user-fixed and
	// already near-optimal, in which case CHOPPER leaves the workload alone.
	sort.Slice(out, func(i, j int) bool { return out[i].Signature < out[j].Signature })
	if err := o.checkSchemes(workload, out, true); err != nil {
		return nil, err
	}
	return out, nil
}

// repartitionBeneficial decides whether to insert a repartition phase for a
// fixed stage: the current cost must exceed Gamma times the optimized cost
// plus the estimated cost of the extra repartition pass itself.
func (o *Optimizer) repartitionBeneficial(workload string, n *StageNode, workloadInput float64, opt Scheme) (decided, insert bool) {
	d := stageInput(n, workloadInput)
	curScheme := rdd.SchemeName(n.DefaultScheme)
	if !rdd.ValidScheme(curScheme) {
		curScheme = rdd.SchemeHash
	}
	curP := n.DefaultP
	if curP <= 0 {
		curP = o.DefaultParallelism
	}
	curCost, err := o.costWithScheme(workload, n.Signature, d, curScheme, curP)
	if err != nil {
		return false, false
	}
	// The inserted phase re-reads and re-shuffles the stage input without
	// the stage's compute; charge it as a fraction of the optimized cost.
	repCost := o.RepartitionPassFraction * opt.Cost
	optCost := opt.Cost + repCost
	if curCost > o.Gamma*optCost {
		return true, true
	}
	return false, false
}

// GenerateConfig runs the global optimizer and renders the workload
// configuration file the scheduler consumes (paper Fig. 6).
func (o *Optimizer) GenerateConfig(workload string, workloadInput float64) (*config.File, error) {
	schemes, err := o.GetGlobalPar(workload, workloadInput)
	if err != nil {
		return nil, err
	}
	f := &config.File{Workload: workload}
	for _, s := range schemes {
		f.Set(config.Entry{
			Signature:         s.Signature,
			Scheme:            s.Partitioner,
			NumPartitions:     s.NumPartitions,
			InsertRepartition: s.InsertRepartition,
		})
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// FitForTest exposes fitScheme for diagnostics.
func FitForTest(o *Optimizer, workload, sig, scheme string, d float64) (*model.StageModels, error) {
	return o.fitScheme(workload, sig, scheme, d)
}
