// Package core implements CHOPPER itself — the paper's contribution: the
// workload database of observed stage statistics, the statistics recorder,
// the test-run profiler, and the partition optimizer implementing the
// paper's Algorithm 1 (stage-level scheme), Algorithm 2 (per-stage workload
// scheme) and Algorithm 3 (globally optimized scheme with DAG regrouping and
// repartition insertion), and the workload configuration generator.
package core

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"chopper/internal/model"
)

// StageNode is the merged DAG metadata of one stage signature within a
// workload, accumulated across profiled jobs.
type StageNode struct {
	Signature  string   `json:"sig"`
	Name       string   `json:"name"`
	ParentSigs []string `json:"parents,omitempty"`
	Fixed      bool     `json:"fixed,omitempty"`
	IsJoinLike bool     `json:"join,omitempty"`
	IsResult   bool     `json:"result,omitempty"`
	// PinKey groups stages with a partition dependency on one cached RDD.
	PinKey string `json:"pinKey,omitempty"`

	// InputFraction is the mean observed stage input size divided by the
	// workload input size; it projects a new workload size onto per-stage
	// input sizes (getStageInput in the paper's algorithms).
	InputFraction float64 `json:"inputFraction"`
	fracSamples   int

	// DefaultP and DefaultScheme describe the partitioning last observed
	// under the default (vanilla) configuration.
	DefaultP      int    `json:"defaultP"`
	DefaultScheme string `json:"defaultScheme"`
}

// WorkloadData is everything the DB knows about one workload.
type WorkloadData struct {
	Nodes []*StageNode `json:"nodes"`
	// Samples maps stage signature -> partitioner scheme -> observations.
	Samples map[string]map[string][]model.Sample `json:"samples"`
	// Runs counts profiled executions; with per-stage sample counts it
	// yields each stage's occurrences per run (iterative stages run the
	// same signature several times per execution).
	Runs int `json:"runs"`
}

// DB is CHOPPER's workload database (paper Fig. 5, "Workload DB"): observed
// input sizes, stage structure, task counts and runtime statistics, keyed by
// workload and stage signature.
type DB struct {
	mu        sync.Mutex
	Workloads map[string]*WorkloadData `json:"workloads"`
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{Workloads: map[string]*WorkloadData{}}
}

func (db *DB) workload(name string) *WorkloadData {
	wd, ok := db.Workloads[name]
	if !ok {
		wd = &WorkloadData{Samples: map[string]map[string][]model.Sample{}}
		db.Workloads[name] = wd
	}
	return wd
}

// StageObservation is one stage execution reported by the recorder.
type StageObservation struct {
	Signature   string
	Name        string
	ParentSigs  []string
	Fixed       bool
	IsJoinLike  bool
	IsResult    bool
	Partitioner string  // scheme name used ("hash", "range", "input")
	PinKey      string  // partition-dependency group
	D           float64 // stage input bytes (source + cache + shuffle read)
	P           float64 // partition count
	Texe        float64
	Sshuffle    float64
	IsDefault   bool // observed under the default configuration
}

// AddRun merges one profiled run into the database.
func (db *DB) AddRun(workload string, workloadInputBytes float64, obs []StageObservation) {
	db.mu.Lock()
	defer db.mu.Unlock()
	wd := db.workload(workload)
	wd.Runs++
	for _, o := range obs {
		node := wd.node(o.Signature)
		if node == nil {
			node = &StageNode{Signature: o.Signature, Name: o.Name}
			wd.Nodes = append(wd.Nodes, node)
		}
		node.ParentSigs = mergeSigs(node.ParentSigs, o.ParentSigs)
		node.Fixed = node.Fixed || o.Fixed
		node.IsJoinLike = node.IsJoinLike || o.IsJoinLike
		node.IsResult = node.IsResult || o.IsResult
		if o.PinKey != "" {
			node.PinKey = o.PinKey
		}
		if workloadInputBytes > 0 {
			frac := o.D / workloadInputBytes
			node.InputFraction = (node.InputFraction*float64(node.fracSamples) + frac) / float64(node.fracSamples+1)
			node.fracSamples++
		}
		if o.IsDefault {
			node.DefaultP = int(o.P)
			node.DefaultScheme = o.Partitioner
		}
		bySig, ok := wd.Samples[o.Signature]
		if !ok {
			bySig = map[string][]model.Sample{}
			wd.Samples[o.Signature] = bySig
		}
		bySig[o.Partitioner] = append(bySig[o.Partitioner], model.Sample{
			D: o.D, P: o.P, Texe: o.Texe, Sshuffle: o.Sshuffle,
		})
	}
}

func (wd *WorkloadData) node(sig string) *StageNode {
	for _, n := range wd.Nodes {
		if n.Signature == sig {
			return n
		}
	}
	return nil
}

func mergeSigs(into, add []string) []string {
	seen := map[string]bool{}
	for _, s := range into {
		seen[s] = true
	}
	for _, s := range add {
		if !seen[s] {
			seen[s] = true
			into = append(into, s)
		}
	}
	return into
}

// Nodes returns the stage nodes of a workload in first-appearance order.
func (db *DB) Nodes(workload string) []*StageNode {
	db.mu.Lock()
	defer db.mu.Unlock()
	wd, ok := db.Workloads[workload]
	if !ok {
		return nil
	}
	out := make([]*StageNode, len(wd.Nodes))
	copy(out, wd.Nodes)
	return out
}

// SamplesFor returns the observations of (workload, signature, scheme).
func (db *DB) SamplesFor(workload, sig, scheme string) []model.Sample {
	db.mu.Lock()
	defer db.mu.Unlock()
	wd, ok := db.Workloads[workload]
	if !ok {
		return nil
	}
	bySig, ok := wd.Samples[sig]
	if !ok {
		return nil
	}
	return bySig[scheme]
}

// Schemes lists the partitioner schemes with observations for a stage.
func (db *DB) Schemes(workload, sig string) []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	wd, ok := db.Workloads[workload]
	if !ok {
		return nil
	}
	var out []string
	for _, s := range []string{"hash", "range", "input"} {
		if len(wd.Samples[sig][s]) > 0 {
			out = append(out, s)
		}
	}
	return out
}

// RunCount reports how many profiled executions the workload has.
func (db *DB) RunCount(workload string) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	wd, ok := db.Workloads[workload]
	if !ok {
		return 0
	}
	return wd.Runs
}

// OccurrencesPerRun estimates how many times the stage with the given
// signature executes in one workload run.
func (db *DB) OccurrencesPerRun(workload, sig string) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	wd, ok := db.Workloads[workload]
	if !ok || wd.Runs == 0 {
		return 1
	}
	n := 0
	for _, ss := range wd.Samples[sig] {
		n += len(ss)
	}
	occ := n / wd.Runs
	if occ < 1 {
		occ = 1
	}
	return occ
}

// SampleCount reports the total observation count for a workload.
func (db *DB) SampleCount(workload string) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	wd, ok := db.Workloads[workload]
	if !ok {
		return 0
	}
	n := 0
	for _, bySig := range wd.Samples {
		for _, ss := range bySig {
			n += len(ss)
		}
	}
	return n
}

// Save persists the database as JSON.
func (db *DB) Save(path string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	data, err := json.MarshalIndent(db, "", "  ")
	if err != nil {
		return fmt.Errorf("core: marshal db: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadDB reads a database saved by Save.
func LoadDB(path string) (*DB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	db := NewDB()
	if err := json.Unmarshal(data, db); err != nil {
		return nil, fmt.Errorf("core: unmarshal db: %w", err)
	}
	if db.Workloads == nil {
		db.Workloads = map[string]*WorkloadData{}
	}
	for _, wd := range db.Workloads {
		if wd.Samples == nil {
			wd.Samples = map[string]map[string][]model.Sample{}
		}
	}
	return db, nil
}
