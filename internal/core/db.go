// Package core implements CHOPPER itself — the paper's contribution: the
// workload database of observed stage statistics, the statistics recorder,
// the test-run profiler, and the partition optimizer implementing the
// paper's Algorithm 1 (stage-level scheme), Algorithm 2 (per-stage workload
// scheme) and Algorithm 3 (globally optimized scheme with DAG regrouping and
// repartition insertion), and the workload configuration generator.
package core

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"chopper/internal/model"
)

// StageNode is the merged DAG metadata of one stage signature within a
// workload, accumulated across profiled jobs.
type StageNode struct {
	Signature  string   `json:"sig"`
	Name       string   `json:"name"`
	ParentSigs []string `json:"parents,omitempty"`
	Fixed      bool     `json:"fixed,omitempty"`
	IsJoinLike bool     `json:"join,omitempty"`
	IsResult   bool     `json:"result,omitempty"`
	// PinKey groups stages with a partition dependency on one cached RDD.
	PinKey string `json:"pinKey,omitempty"`

	// InputFraction is the mean observed stage input size divided by the
	// workload input size; it projects a new workload size onto per-stage
	// input sizes (getStageInput in the paper's algorithms). FracSamples is
	// its accumulation count; it is persisted so a node recovered from a
	// snapshot keeps accumulating with the same weights as one that lived
	// through every AddRun — the property that keeps a replica bootstrapped
	// from a primary's snapshot byte-converged with the primary under
	// subsequent journal shipping.
	InputFraction float64 `json:"inputFraction"`
	FracSamples   int     `json:"fracSamples,omitempty"`

	// DefaultP and DefaultScheme describe the partitioning last observed
	// under the default (vanilla) configuration.
	DefaultP      int    `json:"defaultP"`
	DefaultScheme string `json:"defaultScheme"`
}

// WorkloadData is everything the DB knows about one workload.
type WorkloadData struct {
	Nodes []*StageNode `json:"nodes"`
	// Samples maps stage signature -> partitioner scheme -> observations.
	Samples map[string]map[string][]model.Sample `json:"samples"`
	// Runs counts profiled executions; with per-stage sample counts it
	// yields each stage's occurrences per run (iterative stages run the
	// same signature several times per execution).
	Runs int `json:"runs"`
}

// DB is CHOPPER's workload database (paper Fig. 5, "Workload DB"): observed
// input sizes, stage structure, task counts and runtime statistics, keyed by
// workload and stage signature.
//
// Locking contract: a DB is safe for concurrent use by multiple goroutines.
// AddRun is the only mutator and takes the write lock; every accessor takes
// the read lock and returns data the caller owns — Nodes deep-copies the
// stage nodes and SamplesFor copies the sample slice, so no caller ever
// holds a reference into live DB state (copy-on-read). Long read-mostly
// pipelines (the optimizer behind a recommend endpoint) should take one
// CloneWorkload snapshot up front and run lock-free on the clone, so they
// never block behind — or are blocked by — concurrent training writes.
type DB struct {
	mu        sync.RWMutex
	observer  func(workload string, workloadInputBytes float64, obs []StageObservation)
	Workloads map[string]*WorkloadData `json:"workloads"`
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{Workloads: map[string]*WorkloadData{}}
}

func (db *DB) workload(name string) *WorkloadData {
	wd, ok := db.Workloads[name]
	if !ok {
		wd = &WorkloadData{Samples: map[string]map[string][]model.Sample{}}
		db.Workloads[name] = wd
	}
	return wd
}

// StageObservation is one stage execution reported by the recorder. The
// JSON tags pin the journal's on-disk record format (core.Store).
type StageObservation struct {
	Signature   string   `json:"sig"`
	Name        string   `json:"name,omitempty"`
	ParentSigs  []string `json:"parents,omitempty"`
	Fixed       bool     `json:"fixed,omitempty"`
	IsJoinLike  bool     `json:"join,omitempty"`
	IsResult    bool     `json:"result,omitempty"`
	Partitioner string   `json:"part"`             // scheme name used ("hash", "range", "input")
	PinKey      string   `json:"pinKey,omitempty"` // partition-dependency group
	D           float64  `json:"d"`                // stage input bytes (source + cache + shuffle read)
	P           float64  `json:"p"`                // partition count
	Texe        float64  `json:"texe"`
	Sshuffle    float64  `json:"sshuffle"`
	IsDefault   bool     `json:"default,omitempty"` // observed under the default configuration
}

// SetObserver installs a hook invoked on every AddRun, while the write lock
// is still held, with exactly the arguments that were applied — so the
// observation order seen by the hook is the order the DB state was mutated
// in (the property journal replay relies on). Install it once, before the
// DB is shared across goroutines; the durable Store uses it to journal.
func (db *DB) SetObserver(fn func(workload string, workloadInputBytes float64, obs []StageObservation)) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.observer = fn
}

// AddRun merges one profiled run into the database. It is the DB's only
// mutator and takes the write lock for the whole merge.
func (db *DB) AddRun(workload string, workloadInputBytes float64, obs []StageObservation) {
	db.mu.Lock()
	defer db.mu.Unlock()
	wd := db.workload(workload)
	wd.Runs++
	for _, o := range obs {
		node := wd.node(o.Signature)
		if node == nil {
			node = &StageNode{Signature: o.Signature, Name: o.Name}
			wd.Nodes = append(wd.Nodes, node)
		}
		node.ParentSigs = mergeSigs(node.ParentSigs, o.ParentSigs)
		node.Fixed = node.Fixed || o.Fixed
		node.IsJoinLike = node.IsJoinLike || o.IsJoinLike
		node.IsResult = node.IsResult || o.IsResult
		if o.PinKey != "" {
			node.PinKey = o.PinKey
		}
		if workloadInputBytes > 0 {
			frac := o.D / workloadInputBytes
			node.InputFraction = (node.InputFraction*float64(node.FracSamples) + frac) / float64(node.FracSamples+1)
			node.FracSamples++
		}
		if o.IsDefault {
			node.DefaultP = int(o.P)
			node.DefaultScheme = o.Partitioner
		}
		bySig, ok := wd.Samples[o.Signature]
		if !ok {
			bySig = map[string][]model.Sample{}
			wd.Samples[o.Signature] = bySig
		}
		bySig[o.Partitioner] = append(bySig[o.Partitioner], model.Sample{
			D: o.D, P: o.P, Texe: o.Texe, Sshuffle: o.Sshuffle,
		})
	}
	if db.observer != nil {
		db.observer(workload, workloadInputBytes, obs)
	}
}

func (wd *WorkloadData) node(sig string) *StageNode {
	for _, n := range wd.Nodes {
		if n.Signature == sig {
			return n
		}
	}
	return nil
}

func mergeSigs(into, add []string) []string {
	seen := map[string]bool{}
	for _, s := range into {
		seen[s] = true
	}
	for _, s := range add {
		if !seen[s] {
			seen[s] = true
			into = append(into, s)
		}
	}
	return into
}

// Nodes returns the stage nodes of a workload in first-appearance order.
// The nodes are deep copies: AddRun mutates node fields in place, so
// handing out the live pointers would race with concurrent training.
func (db *DB) Nodes(workload string) []*StageNode {
	db.mu.RLock()
	defer db.mu.RUnlock()
	wd, ok := db.Workloads[workload]
	if !ok {
		return nil
	}
	out := make([]*StageNode, len(wd.Nodes))
	for i, n := range wd.Nodes {
		out[i] = n.clone()
	}
	return out
}

// clone returns an independent copy of the node.
func (n *StageNode) clone() *StageNode {
	c := *n
	c.ParentSigs = append([]string(nil), n.ParentSigs...)
	return &c
}

// SamplesFor returns a copy of the observations of (workload, signature,
// scheme); the caller owns the returned slice.
func (db *DB) SamplesFor(workload, sig, scheme string) []model.Sample {
	db.mu.RLock()
	defer db.mu.RUnlock()
	wd, ok := db.Workloads[workload]
	if !ok {
		return nil
	}
	bySig, ok := wd.Samples[sig]
	if !ok {
		return nil
	}
	ss, ok := bySig[scheme]
	if !ok {
		return nil
	}
	return append([]model.Sample(nil), ss...)
}

// Schemes lists the partitioner schemes with observations for a stage.
func (db *DB) Schemes(workload, sig string) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	wd, ok := db.Workloads[workload]
	if !ok {
		return nil
	}
	var out []string
	for _, s := range []string{"hash", "range", "input"} {
		if len(wd.Samples[sig][s]) > 0 {
			out = append(out, s)
		}
	}
	return out
}

// RunCount reports how many profiled executions the workload has.
func (db *DB) RunCount(workload string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	wd, ok := db.Workloads[workload]
	if !ok {
		return 0
	}
	return wd.Runs
}

// OccurrencesPerRun estimates how many times the stage with the given
// signature executes in one workload run.
func (db *DB) OccurrencesPerRun(workload, sig string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	wd, ok := db.Workloads[workload]
	if !ok || wd.Runs == 0 {
		return 1
	}
	n := 0
	for _, ss := range wd.Samples[sig] {
		n += len(ss)
	}
	occ := n / wd.Runs
	if occ < 1 {
		occ = 1
	}
	return occ
}

// SampleCount reports the total observation count for a workload.
func (db *DB) SampleCount(workload string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	wd, ok := db.Workloads[workload]
	if !ok {
		return 0
	}
	n := 0
	for _, bySig := range wd.Samples {
		for _, ss := range bySig {
			n += len(ss)
		}
	}
	return n
}

// CloneWorkload returns a new DB holding an independent deep copy of one
// workload's data (empty if the workload is unknown). It holds the read
// lock only for the copy; the returned DB is private to the caller, so
// running the optimizer over it never contends with concurrent AddRun
// writers — the copy-on-read snapshot behind the recommend endpoints.
func (db *DB) CloneWorkload(workload string) *DB {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := NewDB()
	wd, ok := db.Workloads[workload]
	if !ok {
		return out
	}
	out.Workloads[workload] = wd.clone()
	return out
}

// clone returns an independent deep copy of the workload data.
func (wd *WorkloadData) clone() *WorkloadData {
	c := &WorkloadData{
		Nodes:   make([]*StageNode, len(wd.Nodes)),
		Samples: make(map[string]map[string][]model.Sample, len(wd.Samples)),
		Runs:    wd.Runs,
	}
	for i, n := range wd.Nodes {
		c.Nodes[i] = n.clone()
	}
	for sig, bySig := range wd.Samples {
		m := make(map[string][]model.Sample, len(bySig))
		for scheme, ss := range bySig {
			cp := make([]model.Sample, len(ss))
			copy(cp, ss)
			m[scheme] = cp
		}
		c.Samples[sig] = m
	}
	return c
}

// MarshalSnapshot renders the database as the snapshot JSON Save writes,
// holding the read lock only while marshaling.
func (db *DB) MarshalSnapshot() ([]byte, error) { return db.marshalSnapshotWith(nil) }

// marshalSnapshotWith marshals the database, first invoking capture under
// the same read-lock hold. Because AddRun runs its observer while holding
// the write lock, whatever capture records (the Store's journal position,
// say) is exactly consistent with the marshaled state: no observation can
// land between the capture and the marshal.
func (db *DB) marshalSnapshotWith(capture func()) ([]byte, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if capture != nil {
		capture()
	}
	data, err := json.MarshalIndent(db, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("core: marshal db: %w", err)
	}
	return data, nil
}

// Save persists the database as JSON.
func (db *DB) Save(path string) error {
	data, err := db.MarshalSnapshot()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadDB reads a database saved by Save.
func LoadDB(path string) (*DB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	db := NewDB()
	if err := json.Unmarshal(data, db); err != nil {
		return nil, fmt.Errorf("core: unmarshal db: %w", err)
	}
	normalizeDB(db)
	return db, nil
}

// normalizeDB repairs the nil maps a JSON round-trip can produce. It runs
// on freshly unmarshaled DBs that no other goroutine can reach yet, so the
// accesses below are deliberately lock-free.
func normalizeDB(db *DB) {
	if db.Workloads == nil { //lint:ignore lockcontract freshly unmarshaled DB, not yet shared with any other goroutine
		db.Workloads = map[string]*WorkloadData{}
	}
	for _, wd := range db.Workloads { //lint:ignore lockcontract freshly unmarshaled DB, not yet shared with any other goroutine
		if wd.Samples == nil {
			wd.Samples = map[string]map[string][]model.Sample{}
		}
	}
}

// ReplaceAll swaps in src's entire workload map under the write lock and
// takes ownership of it — the caller must not touch src afterwards. This is
// the replica bootstrap path: the observer is deliberately not invoked (the
// records behind src are already durable in the shipped journal, so
// re-journaling them here would double them on replay).
func (db *DB) ReplaceAll(src *DB) {
	db.mu.Lock()
	defer db.mu.Unlock()
	//lint:ignore journalorder bootstrap swap: the records behind src are already durable in the shipped journal; re-journaling would double them on replay
	db.Workloads = src.Workloads //lint:ignore lockcontract src is exclusively owned by the caller (ownership transfer), never shared
}
