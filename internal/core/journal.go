package core

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// Store is the durable persistence layer for a DB: an atomic snapshot plus
// an append-only journal of AddRun observations.
//
// Layout: the snapshot lives at the base path (the JSON Save writes) and
// the journal at base+".journal", one JSON record per line. Recovery =
// load the snapshot (if any), then replay journal records in order; since
// the DB invokes its observer while the write lock is held, the journal
// order equals the mutation order and replay rebuilds the exact same DB
// state — including float accumulations like StageNode.InputFraction,
// which are order-sensitive.
//
// Snapshot writes are atomic (temp file + fsync + rename) and truncate the
// journal afterwards, so a crash at any point leaves either the old
// snapshot + full journal or the new snapshot + empty journal.
type Store struct {
	mu       sync.Mutex
	base     string
	journal  *os.File
	w        *bufio.Writer
	appended int
	replayed int
	closed   bool

	// SyncAppends controls whether every Append fsyncs the journal
	// (default true: an acknowledged write survives a crash).
	SyncAppends bool
}

// journalRecord is one journaled AddRun.
type journalRecord struct {
	Workload   string             `json:"workload"`
	InputBytes float64            `json:"inputBytes"`
	Obs        []StageObservation `json:"obs"`
}

// OpenStore opens (or creates) the store at base, loads the snapshot if one
// exists, replays the journal into it, and returns the recovered DB. The
// returned DB does not yet journal new writes — call Attach to wire the
// store in as the DB's observer once recovery state has been inspected.
func OpenStore(base string) (*Store, *DB, error) {
	if base == "" {
		return nil, nil, fmt.Errorf("core: store: empty base path")
	}
	db, err := LoadDB(base)
	if errors.Is(err, fs.ErrNotExist) {
		db, err = NewDB(), nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("core: store: load snapshot: %w", err)
	}
	st := &Store{base: base, SyncAppends: true}
	if st.replayed, err = replayJournal(st.journalPath(), db); err != nil {
		return nil, nil, err
	}
	st.journal, err = os.OpenFile(st.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("core: store: open journal: %w", err)
	}
	st.w = bufio.NewWriter(st.journal)
	return st, db, nil
}

// journalPath is the journal file derived from the snapshot base path.
func (s *Store) journalPath() string { return s.base + ".journal" }

// replayJournal applies every complete journal record to db. A malformed
// final line — the torn tail of a crashed append — ends the replay without
// error; a malformed line with records after it is corruption and fails.
func replayJournal(path string, db *DB) (int, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("core: store: open journal: %w", err)
	}
	defer func() { _ = f.Close() }() // read-only; nothing to flush
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	n, torn := 0, false
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			if torn {
				return n, fmt.Errorf("core: store: journal corrupt beyond torn tail: %w", err)
			}
			torn = true
			continue
		}
		if torn {
			return n, fmt.Errorf("core: store: journal has a record after a torn line")
		}
		db.AddRun(rec.Workload, rec.InputBytes, rec.Obs)
		n++
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("core: store: read journal: %w", err)
	}
	return n, nil
}

// Attach installs the store as db's AddRun observer, so every subsequent
// write is journaled in mutation order.
func (s *Store) Attach(db *DB) {
	db.SetObserver(func(workload string, inputBytes float64, obs []StageObservation) {
		if err := s.Append(workload, inputBytes, obs); err != nil {
			// The DB mutation has already happened; losing the journal
			// record silently would desynchronize replay, so fail loudly.
			panic(fmt.Sprintf("core: store: journal append failed: %v", err))
		}
	})
}

// Append journals one AddRun. Safe for concurrent use; the write (and the
// fsync, when SyncAppends is set) completes before Append returns.
func (s *Store) Append(workload string, inputBytes float64, obs []StageObservation) error {
	data, err := json.Marshal(journalRecord{Workload: workload, InputBytes: inputBytes, Obs: obs})
	if err != nil {
		return fmt.Errorf("core: store: marshal journal record: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("core: store: append after close")
	}
	if _, err := s.w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("core: store: write journal: %w", err)
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("core: store: flush journal: %w", err)
	}
	if s.SyncAppends {
		if err := s.journal.Sync(); err != nil {
			return fmt.Errorf("core: store: sync journal: %w", err)
		}
	}
	s.appended++
	return nil
}

// Snapshot atomically persists db at the base path and truncates the
// journal: temp file, fsync, rename, then a fresh empty journal.
func (s *Store) Snapshot(db *DB) error {
	data, err := db.MarshalSnapshot()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("core: store: snapshot after close")
	}
	tmp, err := os.CreateTemp(filepath.Dir(s.base), filepath.Base(s.base)+".tmp*")
	if err != nil {
		return fmt.Errorf("core: store: snapshot temp: %w", err)
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if werr != nil {
		_ = tmp.Close() // the write already failed; surface that error
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("core: store: write snapshot: %w", werr)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("core: store: close snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.base); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("core: store: publish snapshot: %w", err)
	}
	// The snapshot now covers everything journaled; start a fresh journal.
	if err := s.journal.Close(); err != nil {
		return fmt.Errorf("core: store: close journal: %w", err)
	}
	s.journal, err = os.OpenFile(s.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("core: store: reset journal: %w", err)
	}
	s.w = bufio.NewWriter(s.journal)
	s.appended, s.replayed = 0, 0
	return nil
}

// JournalRecords reports the records currently covered only by the journal:
// those replayed at open plus those appended since the last snapshot.
func (s *Store) JournalRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replayed + s.appended
}

// SnapshotPath reports the snapshot file path.
func (s *Store) SnapshotPath() string { return s.base }

// Close flushes and closes the journal. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if ferr := s.w.Flush(); ferr != nil {
		err = ferr
	}
	if serr := s.journal.Sync(); serr != nil && err == nil {
		err = serr
	}
	if cerr := s.journal.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("core: store: close: %w", err)
	}
	return nil
}

var _ io.Closer = (*Store)(nil)
