package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// Store is the durable persistence layer for a DB: an atomic snapshot plus
// an append-only journal of AddRun observations.
//
// Layout: the snapshot lives at the base path (the JSON Save writes) and
// the journal at base+".journal", one JSON record per line. Recovery =
// load the snapshot (if any), then replay journal records in order; since
// the DB invokes its observer while the write lock is held, the journal
// order equals the mutation order and replay rebuilds the exact same DB
// state — including float accumulations like StageNode.InputFraction,
// which are order-sensitive.
//
// Snapshot writes are atomic (temp file + fsync + rename) and drop the
// journal prefix the snapshot covers, so a crash at any point leaves either
// the old snapshot + full journal or the new snapshot + the (usually empty)
// journal of records appended after the snapshot marshal. Recovery also
// truncates a torn journal tail — the unacknowledged fragment of an append
// cut short by a crash — before new appends are accepted.
type Store struct {
	mu       sync.Mutex
	base     string
	journal  *os.File
	w        *bufio.Writer
	size     int64 // journal bytes on disk (buffer always flushed by Append)
	appended int
	replayed int
	epoch    int64 // journal stream identity (segment.go); bumps on truncation
	closed   bool

	// SyncAppends controls whether every Append fsyncs the journal
	// (default true: an acknowledged write survives a crash).
	SyncAppends bool
}

// journalRecord is one journaled AddRun.
type journalRecord struct {
	Workload   string             `json:"workload"`
	InputBytes float64            `json:"inputBytes"`
	Obs        []StageObservation `json:"obs"`
}

// OpenStore opens (or creates) the store at base, loads the snapshot if one
// exists, replays the journal into it, and returns the recovered DB. The
// returned DB does not yet journal new writes — call Attach to wire the
// store in as the DB's observer once recovery state has been inspected.
func OpenStore(base string) (*Store, *DB, error) {
	if base == "" {
		return nil, nil, fmt.Errorf("core: store: empty base path")
	}
	db, err := LoadDB(base)
	if errors.Is(err, fs.ErrNotExist) {
		db, err = NewDB(), nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("core: store: load snapshot: %w", err)
	}
	st := &Store{base: base, SyncAppends: true}
	var off int64
	if st.replayed, off, err = replayJournal(st.journalPath(), db); err != nil {
		return nil, nil, err
	}
	// Drop the torn tail (if any) before opening for append: O_APPEND onto
	// a partial line would concatenate the next record into it, losing that
	// acknowledged record — and making the journal unreadable once more
	// records follow the mangled line.
	if fi, serr := os.Stat(st.journalPath()); serr == nil && fi.Size() > off {
		if terr := os.Truncate(st.journalPath(), off); terr != nil {
			return nil, nil, fmt.Errorf("core: store: truncate torn journal tail: %w", terr)
		}
	}
	st.journal, err = os.OpenFile(st.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("core: store: open journal: %w", err)
	}
	st.w = bufio.NewWriter(st.journal)
	st.size = off
	if st.epoch, err = loadEpoch(st.metaPath()); err != nil {
		return nil, nil, err
	}
	return st, db, nil
}

// journalPath is the journal file derived from the snapshot base path.
func (s *Store) journalPath() string { return s.base + ".journal" }

// replayJournal applies every complete journal record to db and returns the
// record count plus the byte offset where the complete prefix ends. A final
// line that is unterminated or fails to parse is the torn tail of a crashed
// append: Append syncs the full line (data + newline) before acknowledging,
// so a torn line was never acknowledged and replay ends there without error
// — the caller truncates it away. Any line after a torn one is corruption
// and fails the open.
func replayJournal(path string, db *DB) (int, int64, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("core: store: open journal: %w", err)
	}
	defer func() { _ = f.Close() }() // read-only; nothing to flush
	r := bufio.NewReaderSize(f, 1<<20)
	var n int
	var pos, off int64
	torn := false
	for {
		line, rerr := r.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return n, off, fmt.Errorf("core: store: read journal: %w", rerr)
		}
		if len(line) > 0 {
			pos += int64(len(line))
			terminated := line[len(line)-1] == '\n'
			body := bytes.TrimSpace(line)
			switch {
			case len(body) == 0: // blank line: harmless filler
				if terminated && !torn {
					off = pos
				}
			case torn:
				return n, off, fmt.Errorf("core: store: journal has a record after a torn line")
			default:
				var rec journalRecord
				if !terminated || json.Unmarshal(body, &rec) != nil {
					torn = true
					break
				}
				db.AddRun(rec.Workload, rec.InputBytes, rec.Obs)
				n++
				off = pos
			}
		}
		if rerr == io.EOF {
			return n, off, nil
		}
	}
}

// Attach installs the store as db's AddRun observer, so every subsequent
// write is journaled in mutation order.
func (s *Store) Attach(db *DB) {
	db.SetObserver(func(workload string, inputBytes float64, obs []StageObservation) {
		if err := s.Append(workload, inputBytes, obs); err != nil {
			// The DB mutation has already happened; losing the journal
			// record silently would desynchronize replay, so fail loudly.
			panic(fmt.Sprintf("core: store: journal append failed: %v", err))
		}
	})
}

// Append journals one AddRun. Safe for concurrent use; the write (and the
// fsync, when SyncAppends is set) completes before Append returns.
func (s *Store) Append(workload string, inputBytes float64, obs []StageObservation) error {
	data, err := json.Marshal(journalRecord{Workload: workload, InputBytes: inputBytes, Obs: obs})
	if err != nil {
		return fmt.Errorf("core: store: marshal journal record: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("core: store: append after close")
	}
	if _, err := s.w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("core: store: write journal: %w", err)
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("core: store: flush journal: %w", err)
	}
	if s.SyncAppends {
		if err := s.journal.Sync(); err != nil {
			return fmt.Errorf("core: store: sync journal: %w", err)
		}
	}
	s.size += int64(len(data)) + 1
	s.appended++
	return nil
}

// Snapshot atomically persists db at the base path and drops the journal
// prefix the snapshot covers: temp file, fsync, rename, then a journal
// holding only records appended after the marshal (usually none).
//
// Coverage is exact even with concurrent writers: the journal position is
// captured while the DB read lock is held (beginSnapshot), and observer
// appends run under the DB write lock, so every record at or below the
// captured position is in the marshaled state and every record above it is
// preserved by commitSnapshot rather than destroyed.
func (s *Store) Snapshot(db *DB) error {
	data, covSize, covRecords, err := s.beginSnapshot(db)
	if err != nil {
		return err
	}
	return s.commitSnapshot(data, covSize, covRecords)
}

// beginSnapshot marshals db and captures — atomically with the marshal,
// under the DB read lock — the journal size and record count the snapshot
// covers.
func (s *Store) beginSnapshot(db *DB) (data []byte, coveredSize int64, coveredRecords int, err error) {
	data, err = db.marshalSnapshotWith(func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		coveredSize, coveredRecords = s.size, s.replayed+s.appended
	})
	return data, coveredSize, coveredRecords, err
}

// commitSnapshot publishes the marshaled snapshot and rewrites the journal
// to hold only the records beyond the covered prefix.
func (s *Store) commitSnapshot(data []byte, coveredSize int64, coveredRecords int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("core: store: snapshot after close")
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("core: store: flush journal: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(s.base), filepath.Base(s.base)+".tmp*")
	if err != nil {
		return fmt.Errorf("core: store: snapshot temp: %w", err)
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if werr != nil {
		_ = tmp.Close() // the write already failed; surface that error
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("core: store: write snapshot: %w", werr)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("core: store: close snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.base); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("core: store: publish snapshot: %w", err)
	}
	// The truncation below invalidates every replica byte offset; bump the
	// epoch first so a replica that raced the commit sees the mismatch and
	// bootstraps instead of reading the compacted journal at stale offsets.
	if err := s.setEpochLocked(s.epoch + 1); err != nil {
		return err
	}
	// Records journaled after the marshal (an AddRun that interleaved
	// between beginSnapshot and here) are absent from the snapshot; carry
	// them into the fresh journal instead of destroying them.
	var tail []byte
	if s.size > coveredSize {
		tail = make([]byte, s.size-coveredSize)
		tf, err := os.Open(s.journalPath())
		if err != nil {
			return fmt.Errorf("core: store: reread journal tail: %w", err)
		}
		_, rerr := tf.ReadAt(tail, coveredSize)
		_ = tf.Close()
		if rerr != nil {
			return fmt.Errorf("core: store: reread journal tail: %w", rerr)
		}
	}
	if err := s.journal.Close(); err != nil {
		return fmt.Errorf("core: store: close journal: %w", err)
	}
	s.journal, err = os.OpenFile(s.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("core: store: reset journal: %w", err)
	}
	s.w = bufio.NewWriter(s.journal)
	s.size = 0
	if len(tail) > 0 {
		if _, err := s.journal.Write(tail); err != nil {
			return fmt.Errorf("core: store: rewrite journal tail: %w", err)
		}
		// The tail records were acknowledged as durable before the rewrite;
		// sync so they stay that way in the new file.
		if err := s.journal.Sync(); err != nil {
			return fmt.Errorf("core: store: sync journal tail: %w", err)
		}
		s.size = int64(len(tail))
	}
	s.replayed = s.replayed + s.appended - coveredRecords
	s.appended = 0
	return nil
}

// JournalRecords reports the records currently covered only by the journal:
// those replayed at open plus those appended since the last snapshot.
func (s *Store) JournalRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replayed + s.appended
}

// SnapshotPath reports the snapshot file path.
func (s *Store) SnapshotPath() string { return s.base }

// Close flushes and closes the journal. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if ferr := s.w.Flush(); ferr != nil {
		err = ferr
	}
	if serr := s.journal.Sync(); serr != nil && err == nil {
		err = serr
	}
	if cerr := s.journal.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("core: store: close: %w", err)
	}
	return nil
}

var _ io.Closer = (*Store)(nil)
