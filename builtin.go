package chopper

import (
	"chopper/internal/workloads"
)

// BuiltinApp wraps one of the paper's three SparkBench workloads (kmeans,
// pca, sql) as a tunable App. Rows controls the physical dataset size
// (logical size is the paper's Table I value unless overridden).
type BuiltinApp struct {
	w     workloads.Workload
	bytes int64
	// LastResult holds the checksum/details of the most recent Run.
	LastResult map[string]float64
}

// Builtin returns a built-in workload by name: the paper's "kmeans", "pca"
// and "sql", or the extension workload "pagerank".
func Builtin(name string) (*BuiltinApp, error) {
	w, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	return &BuiltinApp{w: w, bytes: w.DefaultInputBytes()}, nil
}

// BuiltinNames lists the available built-in workloads.
func BuiltinNames() []string {
	var out []string
	for _, w := range workloads.AllWithExtensions() {
		out = append(out, w.Name())
	}
	return out
}

// Name implements App.
func (b *BuiltinApp) Name() string { return b.w.Name() }

// InputBytes implements App.
func (b *BuiltinApp) InputBytes() int64 { return b.bytes }

// SetInputBytes overrides the logical input size.
func (b *BuiltinApp) SetInputBytes(n int64) { b.bytes = n }

// Shrink scales the physical dataset down by the given factor for fast
// demonstration runs (logical size and cost model are unchanged).
func (b *BuiltinApp) Shrink(factor int) {
	if factor <= 1 {
		return
	}
	switch w := b.w.(type) {
	case *workloads.KMeans:
		w.Rows /= factor
	case *workloads.PCA:
		w.Rows /= factor
	case *workloads.SQL:
		w.Orders /= factor
		w.Customers /= factor
	case *workloads.PageRank:
		w.Pages /= factor
	}
}

// Run implements App.
func (b *BuiltinApp) Run(sess *Session, inputBytes int64) error {
	res, err := b.w.Run(sess.Context(), inputBytes)
	if err != nil {
		return err
	}
	b.LastResult = map[string]float64{"checksum": res.Checksum}
	for k, v := range res.Details {
		b.LastResult[k] = v
	}
	return nil
}
