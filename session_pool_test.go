package chopper_test

import (
	"context"
	"testing"

	"chopper"
)

// runOnce executes the quickstart-style pipeline and returns the simulated
// time and number of recorded stages.
func runOnce(t *testing.T, sess *chopper.Session) (float64, int) {
	t.Helper()
	data := sess.Generate("data", 0, 1<<26, func(split, total int) []chopper.Row {
		var rows []chopper.Row
		for i := split; i < 4000; i += total {
			rows = append(rows, chopper.Pair{K: i % 97, V: float64(i)})
		}
		return rows
	})
	sums := data.ReduceByKey(func(a, b any) any { return a.(float64) + b.(float64) }, 0)
	if _, err := sums.Collect(); err != nil {
		t.Fatal(err)
	}
	return sess.Elapsed(), len(sess.Stages())
}

// TestSessionResetMatchesFresh pins the reuse contract: a Reset session
// behaves exactly like a brand-new one.
func TestSessionResetMatchesFresh(t *testing.T) {
	fresh := chopper.NewSession()
	wantT, wantStages := runOnce(t, fresh)

	reused := chopper.NewSession()
	if tm, _ := runOnce(t, reused); tm != wantT {
		t.Fatalf("first run time %v != fresh %v", tm, wantT)
	}
	reused.Reset()
	if reused.Elapsed() != 0 || len(reused.Stages()) != 0 {
		t.Fatalf("Reset left state: elapsed=%v stages=%d", reused.Elapsed(), len(reused.Stages()))
	}
	gotT, gotStages := runOnce(t, reused)
	if gotT != wantT || gotStages != wantStages {
		t.Fatalf("reset run (%v, %d stages) != fresh run (%v, %d stages)", gotT, gotStages, wantT, wantStages)
	}
}

// TestSessionPoolReuse pins that pooled sessions are recycled and isolated
// across Acquire/Release cycles, including per-acquire extra options.
func TestSessionPoolReuse(t *testing.T) {
	pool := chopper.NewSessionPool()
	s1 := pool.Acquire()
	t1, stages := runOnce(t, s1)
	pool.Release(s1)

	s2 := pool.Acquire()
	if s2 != s1 {
		t.Fatal("pool did not recycle the released session")
	}
	if s2.Elapsed() != 0 || len(s2.Stages()) != 0 {
		t.Fatal("recycled session not reset")
	}
	t2, stages2 := runOnce(t, s2)
	if t2 != t1 || stages2 != stages {
		t.Fatalf("recycled run (%v, %d) != first run (%v, %d)", t2, stages2, t1, stages)
	}
	pool.Release(s2)

	// Extra options apply per acquire and wash out on the next one.
	s3 := pool.Acquire(chopper.WithDefaultParallelism(64))
	if got := s3.Context().DefaultParallelism; got != 64 {
		t.Fatalf("extra option not applied: parallelism %d", got)
	}
	pool.Release(s3)
	s4 := pool.Acquire()
	if got := s4.Context().DefaultParallelism; got != 300 {
		t.Fatalf("extra option leaked across acquires: parallelism %d", got)
	}
	pool.Release(s4)
}

// TestProfileContextCancel pins that a canceled context stops the trial
// grid with an error.
func TestProfileContextCancel(t *testing.T) {
	app, err := chopper.Builtin("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	app.Shrink(50)
	tuner := chopper.NewTuner()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := tuner.ProfileContext(ctx, app); err == nil {
		t.Fatal("ProfileContext with canceled context succeeded")
	}
	if tuner.DB.SampleCount("kmeans") != 0 {
		t.Fatal("canceled profile still recorded runs")
	}
}
