// Command chopperheap runs the static allocation-site and buffer-lifetime
// analysis family (internal/lint's Heap rules) over the module and exits
// non-zero on any finding.
//
// The four rules are the memory contract of the wave hot path:
//
//	hotalloc — allocation sites (make, append growth, map literals,
//	           string concatenation, closure heap captures, numeric
//	           interface boxing) in functions statically reachable from
//	           the declared hot-path roots, gated against the committed
//	           per-function budget in heapbudget.json: a new site fails
//	           deterministically
//	boxf64   — the typed F64 kernel fast paths stay box-free: no boxed
//	           hook fallbacks or in-loop float64→interface boxing inside
//	           a CreateF64/MergeValueF64/MergeCombinersF64-guarded region
//	genlife  — slices derived from shuffle.Manager cached state must not
//	           escape into heap-lived structures (struct fields,
//	           channels, goroutine captures) without a deep copy; they
//	           are only valid until the next shuffle generation
//	prealloc — append-in-loop growth whose capacity is statically
//	           derivable from the ranged collection must pre-size
//
// Usage:
//
//	chopperheap [-json] [-rules=<comma-list>] [packages]
//	chopperheap -write-budget
//
// Packages default to ./... relative to the enclosing module root;
// diagnostics are scoped to the hot-path packages (internal/dag,
// internal/exec, internal/rdd, internal/shuffle). The -json flag emits
// findings in the unified wire schema (tool/rule/pos/msg/severity).
// -write-budget regenerates heapbudget.json at the module root from a
// fresh sweep — run it after auditing any hot-path allocation change and
// commit the result. Exit status: 0 clean, 1 findings, 2 load/parse or
// usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"chopper/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics in the unified wire-JSON schema")
	rules := flag.String("rules", "", "comma-separated rule names to run (default: the heap family)")
	writeBudget := flag.Bool("write-budget", false, "regenerate heapbudget.json at the module root from a fresh sweep and exit")
	flag.Parse()
	if *writeBudget {
		os.Exit(runWriteBudget())
	}
	os.Exit(run(flag.Args(), *jsonOut, *rules))
}

// selectAnalyzers resolves the -rules flag value against the heap family
// (and, through ByName, any other suite's rule asked for explicitly).
func selectAnalyzers(rules string) ([]*lint.Analyzer, error) {
	if rules == "" {
		return lint.Heap(), nil
	}
	var names []string
	for _, n := range strings.Split(rules, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("-rules lists no rule names")
	}
	return lint.ByName(names)
}

func program() (*lint.Program, string, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, "", err
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		return nil, "", err
	}
	prog, err := lint.NewProgram(root)
	if err != nil {
		return nil, "", err
	}
	return prog, root, nil
}

func run(patterns []string, jsonOut bool, rules string) int {
	analyzers, err := selectAnalyzers(rules)
	if err != nil {
		return fail(err)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// One shared Program: the whole-program heap fact (call-graph
	// reachability, allocation-site enumeration, the budget gate) is
	// computed once and shared by every file's rule run.
	prog, root, err := program()
	if err != nil {
		return fail(err)
	}
	dirs, err := prog.Loader.Match(patterns)
	if err != nil {
		return fail(err)
	}
	if len(dirs) == 0 {
		return fail(fmt.Errorf("no packages match %v", patterns))
	}

	var diags []lint.Diagnostic
	for _, dir := range dirs {
		pkg, err := prog.Package(dir)
		if err != nil {
			return fail(err)
		}
		diags = append(diags, lint.Run(pkg, analyzers)...)
	}
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil {
			diags[i].File = rel
		}
	}
	diags = lint.SortDiagnostics(diags)

	if jsonOut {
		if err := lint.WriteJSONTool(os.Stdout, "chopperheap", diags); err != nil {
			return fail(err)
		}
	} else if err := lint.WriteText(os.Stdout, diags); err != nil {
		return fail(err)
	}
	if len(diags) > 0 {
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "chopperheap: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// runWriteBudget recomputes the hot-path allocation-site budget and
// commits it to heapbudget.json at the module root.
func runWriteBudget() int {
	prog, root, err := program()
	if err != nil {
		return fail(err)
	}
	data, err := lint.HeapBudgetJSON(prog)
	if err != nil {
		return fail(err)
	}
	path := filepath.Join(root, lint.HeapBudgetFile)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "chopperheap: wrote %s\n", path)
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "chopperheap:", err)
	return 2
}
