// Command chopperplan is the static plan-drift gate: it reconstructs every
// built-in workload's stage graphs WITHOUT running the workload — a
// symbolic evaluator (internal/plan/extract) interprets the Run method's
// source, replays its transformations against the real rdd API on a
// runner-less context, and intercepts the actions — then
//
//  1. checks the extracted plans against the plan-IR invariants
//     (internal/plan/verify): acyclicity, shuffle boundaries at wide
//     dependencies, co-partitioned joins, partition-count budgets; and
//  2. runs the workload for real (vanilla configuration, shrunk dataset)
//     and diffs the statically extracted stage graphs against the plans
//     the scheduler actually submits, job for job.
//
// Any divergence ("plan drift") fails the gate: either the workload's
// control flow has outgrown the evaluator's model, or a change to the
// rdd/dag layers silently altered the stage structure the paper's figures
// and the optimizer's configurations are keyed to.
//
// Usage:
//
//	chopperplan [-workload=all|kmeans|pca|sql|pagerank] [-shrink=N] [-v] [-json]
//
// The -json flag emits findings on stdout in the unified wire schema
// shared by the gate CLIs (tool/rule/pos/msg/severity); human-readable
// lines move to stderr. Exit status: 0 clean, 1 drift or invariant
// violations, 2 error.
package main

import (
	"flag"
	"fmt"
	"os"

	"chopper/internal/cluster"
	"chopper/internal/experiments"
	"chopper/internal/lint"
	"chopper/internal/plan/extract"
	"chopper/internal/plan/verify"
	"chopper/internal/workloads"
)

func main() {
	workload := flag.String("workload", "all", "workload to gate (all, kmeans, pca, sql, pagerank)")
	shrink := flag.Int("shrink", 6, "dataset shrink factor for the runtime half of the diff")
	verbose := flag.Bool("v", false, "print every extracted plan, not just findings")
	jsonOut := flag.Bool("json", false, "emit findings on stdout in the unified wire-JSON schema")
	flag.Parse()
	os.Exit(run(*workload, *shrink, *verbose, *jsonOut))
}

// reporter accumulates findings in the unified wire schema while printing
// human-readable lines (to stdout normally, stderr under -json, which
// reserves stdout for the array).
type reporter struct {
	json bool
	wire []lint.WireDiagnostic
}

func (r *reporter) finding(rule, pos, msg string) {
	r.wire = append(r.wire, lint.WireDiagnostic{
		Tool: "chopperplan", Rule: rule, Pos: pos, Msg: msg, Severity: "error",
	})
	out := os.Stdout
	if r.json {
		out = os.Stderr
	}
	_, _ = fmt.Fprintf(out, "%s: %s: %s\n", pos, rule, msg)
}

func run(name string, shrink int, verbose, jsonOut bool) int {
	var targets []workloads.Workload
	if name == "all" {
		targets = workloads.AllWithExtensions()
	} else {
		w, err := workloads.ByName(name)
		if err != nil {
			return fail(err)
		}
		targets = []workloads.Workload{w}
	}

	ex, err := extract.New(".")
	if err != nil {
		return fail(err)
	}

	r := &reporter{json: jsonOut}
	for _, w := range targets {
		workloads.Shrink(w, shrink)
		if err := gate(ex, w, verbose, r); err != nil {
			return fail(fmt.Errorf("%s: %w", w.Name(), err))
		}
	}
	if jsonOut {
		if err := lint.WriteWire(os.Stdout, r.wire); err != nil {
			return fail(err)
		}
	}
	if len(r.wire) > 0 {
		fmt.Fprintf(os.Stderr, "chopperplan: %d finding(s)\n", len(r.wire))
		return 1
	}
	if verbose {
		fmt.Fprintln(os.Stderr, "chopperplan: all static plans verified and drift-free")
	}
	return 0
}

// gate extracts, verifies, runs and diffs one workload, reporting findings
// through r.
func gate(ex *extract.Extractor, w workloads.Workload, verbose bool, r *reporter) error {
	bytes := w.DefaultInputBytes()
	rep, err := ex.Extract(w, bytes, experiments.DefaultParallelism)
	if err != nil {
		return err
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "chopperplan: %s: %d static jobs\n", w.Name(), len(rep.Jobs))
		for i, j := range rep.Jobs {
			fmt.Fprintf(os.Stderr, "  job %d (%s):\n", i, j.Action)
			for _, sh := range extract.Shape(j.Plan, j.Topo) {
				fmt.Fprintf(os.Stderr, "    %s\n", sh)
			}
		}
	}

	lim := verify.DefaultLimits(cluster.PaperCluster())
	for _, v := range rep.Verify(lim) {
		r.finding("plan", w.Name(), v.String())
	}

	var cap extract.Capture
	if _, _, err := experiments.RunWorkload(w, bytes, experiments.Options{OnPlan: cap.Hook()}); err != nil {
		return err
	}
	for _, d := range extract.Drift(rep, cap.Jobs()) {
		r.finding("drift", w.Name(), d)
	}
	return nil
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "chopperplan:", err)
	return 2
}
