// Command chopperlint runs the repository's determinism & correctness
// static-analysis suite (internal/lint) over the module's non-test
// packages and exits non-zero on any finding.
//
// Usage:
//
//	chopperlint [-json] [-rules=<comma-list>] [packages]
//	chopperlint -merge file.json...
//
// Packages default to ./... relative to the enclosing module root. The
// -json flag emits findings in the unified wire schema shared by every
// gate CLI (tool/rule/pos/msg/severity) instead of compiler-style text
// lines; -rules restricts the run to a comma-separated subset of rule
// names (default: all; chopperguard rule names are accepted too). The
// -merge mode reads wire-JSON finding files and writes one deduplicated,
// sorted array to stdout — ci.sh uses it to fold the per-tool artifacts
// into a single lint.json. Exit status: 0 clean, 1 findings, 2
// load/parse or usage error (an unknown rule name is a usage error).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"chopper/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics in the unified wire-JSON schema")
	rules := flag.String("rules", "", "comma-separated rule names to run (default: all)")
	merge := flag.Bool("merge", false, "merge wire-JSON finding files (the arguments) into one array on stdout")
	flag.Parse()
	if *merge {
		os.Exit(runMerge(flag.Args()))
	}
	os.Exit(run(flag.Args(), *jsonOut, *rules))
}

// runMerge concatenates wire-JSON finding arrays, dedupes, sorts, and
// writes the result to stdout.
func runMerge(files []string) int {
	if len(files) == 0 {
		return fail(fmt.Errorf("-merge needs at least one wire-JSON file"))
	}
	var all []lint.WireDiagnostic
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return fail(err)
		}
		var part []lint.WireDiagnostic
		if err := json.Unmarshal(data, &part); err != nil {
			return fail(fmt.Errorf("%s: %v", f, err))
		}
		all = append(all, part...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		if a.Tool != b.Tool {
			return a.Tool < b.Tool
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	dedup := all[:0]
	for i, w := range all {
		if i > 0 && w == all[i-1] {
			continue
		}
		dedup = append(dedup, w)
	}
	if err := lint.WriteWire(os.Stdout, dedup); err != nil {
		return fail(err)
	}
	return 0
}

// selectAnalyzers resolves the -rules flag value.
func selectAnalyzers(rules string) ([]*lint.Analyzer, error) {
	if rules == "" {
		return lint.All(), nil
	}
	var names []string
	for _, n := range strings.Split(rules, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("-rules lists no rule names")
	}
	return lint.ByName(names)
}

func run(patterns []string, jsonOut bool, rules string) int {
	analyzers, err := selectAnalyzers(rules)
	if err != nil {
		return fail(err)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return fail(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		return fail(err)
	}
	// One shared Program: every package is parsed and type-checked exactly
	// once, and whole-program facts (the lock-order graph) are computed
	// once and shared across every rule and file that consults them.
	prog, err := lint.NewProgram(root)
	if err != nil {
		return fail(err)
	}
	dirs, err := prog.Loader.Match(patterns)
	if err != nil {
		return fail(err)
	}
	if len(dirs) == 0 {
		return fail(fmt.Errorf("no packages match %v", patterns))
	}

	var diags []lint.Diagnostic
	for _, dir := range dirs {
		pkg, err := prog.Package(dir)
		if err != nil {
			return fail(err)
		}
		diags = append(diags, lint.Run(pkg, analyzers)...)
	}
	// Report module-relative paths: stable across machines and CI. Re-sort
	// afterwards — relativization changes the byte order of paths.
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil {
			diags[i].File = rel
		}
	}
	diags = lint.SortDiagnostics(diags)

	if jsonOut {
		if err := lint.WriteJSONTool(os.Stdout, "chopperlint", diags); err != nil {
			return fail(err)
		}
	} else if err := lint.WriteText(os.Stdout, diags); err != nil {
		return fail(err)
	}
	if len(diags) > 0 {
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "chopperlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "chopperlint:", err)
	return 2
}
