// Command chopperlint runs the repository's determinism & correctness
// static-analysis suite (internal/lint) over the module's non-test
// packages and exits non-zero on any finding.
//
// Usage:
//
//	chopperlint [-json] [packages]
//
// Packages default to ./... relative to the enclosing module root. The
// -json flag emits findings as a JSON array instead of compiler-style
// text lines. Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"chopper/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	flag.Parse()
	os.Exit(run(flag.Args(), *jsonOut))
}

func run(patterns []string, jsonOut bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return fail(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		return fail(err)
	}
	ld, err := lint.NewLoader(root)
	if err != nil {
		return fail(err)
	}
	dirs, err := ld.Match(patterns)
	if err != nil {
		return fail(err)
	}
	if len(dirs) == 0 {
		return fail(fmt.Errorf("no packages match %v", patterns))
	}

	var diags []lint.Diagnostic
	for _, dir := range dirs {
		pkg, err := ld.Load(dir)
		if err != nil {
			return fail(err)
		}
		diags = append(diags, lint.Run(pkg, lint.All())...)
	}
	// Report module-relative paths: stable across machines and CI.
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil {
			diags[i].File = rel
		}
	}

	if jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			return fail(err)
		}
	} else if err := lint.WriteText(os.Stdout, diags); err != nil {
		return fail(err)
	}
	if len(diags) > 0 {
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "chopperlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "chopperlint:", err)
	return 2
}
