// Command chopperd is the CHOPPER tuning daemon: it owns a durable workload
// profile store and serves tuning as a service over HTTP — submit jobs,
// incremental training, recommend/explain reads, and ops endpoints
// (/healthz, /metrics, /debug/pprof). See api for the endpoint map and
// DESIGN.md §9 for the serving architecture.
//
// Usage:
//
//	chopperd [-addr 127.0.0.1:7077] [-store chopperd.db] [-workers N]
//	         [-queue 128] [-shrink 12] [-job-timeout 5m] [-drain-timeout 30s]
//	         [-no-sync]
//
// On SIGINT/SIGTERM the daemon drains: admission stops, in-flight jobs
// finish, a final snapshot is written, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chopper/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "listen address (use :0 for an ephemeral port)")
	store := flag.String("store", "chopperd.db", "durable profile store path (empty: in-memory only)")
	workers := flag.Int("workers", 0, "job worker-pool size (0: max(2, NumCPU))")
	queue := flag.Int("queue", 0, "admission queue depth (0: 128)")
	shrink := flag.Int("shrink", 0, "default physical-dataset shrink factor (0: 12)")
	jobTimeout := flag.Duration("job-timeout", 0, "default per-request deadline (0: 5m)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown deadline")
	noSync := flag.Bool("no-sync", false, "skip fsync per journal append (faster, weaker durability)")
	flag.Parse()

	if err := run(*addr, *store, *workers, *queue, *shrink, *jobTimeout, *drainTimeout, *noSync); err != nil {
		fmt.Fprintf(os.Stderr, "chopperd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, store string, workers, queue, shrink int, jobTimeout, drainTimeout time.Duration, noSync bool) error {
	syncAppends := !noSync
	srv, err := service.New(service.Config{
		StorePath:   store,
		Workers:     workers,
		QueueDepth:  queue,
		Shrink:      shrink,
		JobTimeout:  jobTimeout,
		SyncAppends: &syncAppends,
	})
	if err != nil {
		return err
	}
	ln, err := srv.Listen(addr)
	if err != nil {
		return err
	}
	// The announce line is machine-parsed (chopperload -smoke); keep the
	// prefix stable.
	fmt.Printf("chopperd: listening on http://%s\n", ln.Addr())
	if store != "" {
		fmt.Printf("chopperd: profile store at %s\n", store)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Printf("chopperd: %v received, draining (deadline %s)\n", sig, drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "chopperd: shutdown: %v\n", err)
		}
	}()

	if err := srv.Serve(ln); err != nil {
		return err
	}
	fmt.Println("chopperd: drained, snapshot written, bye")
	return nil
}
