// Command chopperd is the CHOPPER tuning daemon: it owns a durable workload
// profile store and serves tuning as a service over HTTP — submit jobs,
// incremental training, recommend/explain reads, and ops endpoints
// (/healthz, /metrics, /debug/pprof). See api for the endpoint map and
// DESIGN.md §9 for the serving architecture.
//
// Usage:
//
//	chopperd [-addr 127.0.0.1:7077] [-store chopperd.db] [-workers N]
//	         [-queue 128] [-shrink 12] [-job-timeout 5m] [-drain-timeout 30s]
//	         [-no-sync]
//	         [-role primary|replica] [-shard-id N] [-shard-count N]
//	         [-primary URL] [-repl-poll 200ms]
//
// Fleet roles (DESIGN.md §10): -role primary marks the daemon as one
// shard's write owner (it serves /v1/repl/* to its replicas); -role
// replica makes it a read-only follower of -primary, converging on that
// daemon's journal stream. cmd/chopperfleet runs the routing front.
//
// On SIGINT/SIGTERM the daemon drains: admission stops, in-flight jobs
// finish, a final snapshot is written (primaries; replicas keep their
// journal as the shipped stream prefix), and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chopper/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "listen address (use :0 for an ephemeral port)")
	store := flag.String("store", "chopperd.db", "durable profile store path (empty: in-memory only)")
	workers := flag.Int("workers", 0, "job worker-pool size (0: max(2, NumCPU))")
	queue := flag.Int("queue", 0, "admission queue depth (0: 128)")
	shrink := flag.Int("shrink", 0, "default physical-dataset shrink factor (0: 12)")
	jobTimeout := flag.Duration("job-timeout", 0, "default per-request deadline (0: 5m)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown deadline")
	noSync := flag.Bool("no-sync", false, "skip fsync per journal append (faster, weaker durability)")
	role := flag.String("role", "", "fleet role: empty (standalone), primary, or replica")
	shardID := flag.Int("shard-id", 0, "this daemon's shard index in the fleet hash ring")
	shardCount := flag.Int("shard-count", 0, "total shards in the fleet hash ring")
	primary := flag.String("primary", "", "shard primary URL a replica pulls its journal from")
	replPoll := flag.Duration("repl-poll", 0, "replica idle poll interval (0: 200ms)")
	flag.Parse()

	cfg := service.Config{
		StorePath:  *store,
		Workers:    *workers,
		QueueDepth: *queue,
		Shrink:     *shrink,
		JobTimeout: *jobTimeout,
		Role:       *role,
		ShardID:    *shardID,
		ShardCount: *shardCount,
		PrimaryURL: *primary,
		ReplPoll:   *replPoll,
	}
	syncAppends := !*noSync
	cfg.SyncAppends = &syncAppends
	if err := run(*addr, cfg, *drainTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "chopperd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, cfg service.Config, drainTimeout time.Duration) error {
	srv, err := service.New(cfg)
	if err != nil {
		return err
	}
	ln, err := srv.Listen(addr)
	if err != nil {
		return err
	}
	// The announce line is machine-parsed (chopperload -smoke); keep the
	// prefix stable.
	fmt.Printf("chopperd: listening on http://%s\n", ln.Addr())
	if cfg.StorePath != "" {
		fmt.Printf("chopperd: profile store at %s\n", cfg.StorePath)
	}
	if cfg.Role != "" {
		fmt.Printf("chopperd: role %s, shard %d/%d\n", cfg.Role, cfg.ShardID, cfg.ShardCount)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Printf("chopperd: %v received, draining (deadline %s)\n", sig, drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "chopperd: shutdown: %v\n", err)
		}
	}()

	if err := srv.Serve(ln); err != nil {
		return err
	}
	fmt.Println("chopperd: drained, bye")
	return nil
}
