// Command sparksim runs a built-in workload on the simulated cluster with
// explicit knobs — the "vanilla Spark" experience, useful for manual sweeps
// like the paper's Section II-B study.
//
// Usage:
//
//	sparksim -workload kmeans [-partitions 300] [-partitioner hash]
//	         [-gb 21.8] [-shrink 6] [-config file.conf] [-stages] [-util]
package main

import (
	"flag"
	"fmt"
	"os"

	"chopper"
	"chopper/internal/core"
	"chopper/internal/dag"
	"chopper/internal/rdd"
)

func main() {
	workload := flag.String("workload", "kmeans", "built-in workload: kmeans, pca or sql")
	partitions := flag.Int("partitions", 0, "force a uniform partition count (0 = default parallelism)")
	partitioner := flag.String("partitioner", "hash", "uniform partitioner when -partitions is set: hash or range")
	gb := flag.Float64("gb", 0, "logical input size in GB (0 = the paper's Table I size)")
	shrink := flag.Int("shrink", 6, "physical dataset shrink factor")
	cfgPath := flag.String("config", "", "CHOPPER configuration file to apply (enables tuned mode)")
	stages := flag.Bool("stages", true, "print the per-stage breakdown")
	util := flag.Bool("util", false, "print utilization timelines (CPU %, packets/s)")
	gantt := flag.Bool("gantt", false, "print a text Gantt chart of the stage timeline")
	tracePath := flag.String("trace", "", "write a JSON event log of the run to this path")
	clusterPath := flag.String("cluster", "", "JSON topology file (default: the paper's 6-node cluster)")
	flag.Parse()

	if err := run(*workload, *partitions, *partitioner, *gb, *shrink, *cfgPath, *stages, *util, *gantt, *tracePath, *clusterPath); err != nil {
		fmt.Fprintln(os.Stderr, "sparksim:", err)
		os.Exit(1)
	}
}

func run(workload string, partitions int, partitioner string, gb float64, shrink int, cfgPath string, stages, util, gantt bool, tracePath, clusterPath string) error {
	app, err := chopper.Builtin(workload)
	if err != nil {
		return err
	}
	app.Shrink(shrink)
	if gb > 0 {
		app.SetInputBytes(int64(gb * 1e9))
	}

	var opts []chopper.Option
	if clusterPath != "" {
		topo, err := chopper.LoadTopology(clusterPath)
		if err != nil {
			return err
		}
		opts = append(opts, chopper.WithTopology(topo))
	}
	switch {
	case cfgPath != "":
		opts = append(opts, chopper.WithDynamicTuning(cfgPath))
	case partitions > 0:
		scheme := rdd.SchemeName(partitioner)
		if !rdd.ValidScheme(scheme) {
			return fmt.Errorf("unknown partitioner %q", partitioner)
		}
		opts = append(opts, withForceAll(scheme, partitions))
	}
	sess := chopper.NewSession(opts...)
	if err := app.Run(sess, app.InputBytes()); err != nil {
		return err
	}

	fmt.Printf("%s @ %.1f GB: %.1f s simulated over %d stages\n",
		workload, float64(app.InputBytes())/1e9, sess.Elapsed(), len(sess.Stages()))
	if stages {
		fmt.Println("stage  name                     partitioner  tasks  time(s)  shuffleR(KB)  shuffleW(KB)")
		for _, st := range sess.Stages() {
			fmt.Printf("%5d  %-23s  %-11s  %5d  %7.1f  %12.1f  %12.1f\n",
				st.ID, st.Name, st.Partitioner, st.NumTasks, st.Duration(),
				float64(st.ShuffleRead)/1e3, float64(st.ShuffleWrite)/1e3)
		}
	}
	if gantt {
		fmt.Print(sess.Trace(false).Gantt(100))
	}
	if tracePath != "" {
		if err := sess.SaveTrace(tracePath, true); err != nil {
			return err
		}
		fmt.Printf("event log written to %s\n", tracePath)
	}
	if util {
		const step = 20.0
		cpu := sess.Metrics().CPUSeries(sess.Topology(), step)
		net := sess.Metrics().NetSeries(step)
		fmt.Println("time(s)  cpu%  packets/s")
		for i := range cpu.Values {
			n := 0.0
			if i < len(net.Values) {
				n = net.Values[i]
			}
			fmt.Printf("%7.0f  %5.1f  %9.1f\n", float64(i)*step, cpu.Values[i], n)
		}
	}
	return nil
}

// withForceAll applies one uniform scheme to every tunable stage.
func withForceAll(scheme rdd.SchemeName, p int) chopper.Option {
	return chopper.WithConfigurator(&core.ForceAll{
		Spec: dag.SchemeSpec{Scheme: scheme, NumPartitions: p},
	})
}
