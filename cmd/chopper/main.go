// Command chopper runs the offline CHOPPER pipeline for a built-in workload:
// profile it with lightweight test runs, fit the per-stage cost models,
// compute the globally optimized partition scheme (Algorithm 3), and write
// the workload configuration file the scheduler consumes.
//
// Usage:
//
//	chopper -workload kmeans [-out kmeans.conf] [-db stats.json]
//	        [-shrink 6] [-compare] [-alg 2|3] [-gamma 1.5]
package main

import (
	"flag"
	"fmt"
	"os"

	"chopper"
	"chopper/internal/config"
	"chopper/internal/core"
)

func main() {
	workload := flag.String("workload", "kmeans", "built-in workload: kmeans, pca or sql")
	out := flag.String("out", "", "path to write the configuration file (default <workload>.conf)")
	dbPath := flag.String("db", "", "optional path to persist/reuse the workload database (JSON)")
	shrink := flag.Int("shrink", 6, "physical dataset shrink factor")
	compare := flag.Bool("compare", false, "after training, run vanilla vs tuned and report times")
	alg := flag.Int("alg", 3, "optimizer: 2 = per-stage (Algorithm 2), 3 = global (Algorithm 3)")
	gamma := flag.Float64("gamma", 1.5, "repartition benefit factor")
	explain := flag.Bool("explain", false, "print the per-stage optimization report")
	flag.Parse()

	if err := run(*workload, *out, *dbPath, *shrink, *compare, *alg, *gamma, *explain); err != nil {
		fmt.Fprintln(os.Stderr, "chopper:", err)
		os.Exit(1)
	}
}

func run(workload, out, dbPath string, shrink int, compare bool, alg int, gamma float64, explain bool) error {
	app, err := chopper.Builtin(workload)
	if err != nil {
		return err
	}
	app.Shrink(shrink)

	tuner := chopper.NewTuner()
	if dbPath != "" {
		if db, err := core.LoadDB(dbPath); err == nil {
			tuner.DB = db
			fmt.Printf("loaded %d samples from %s\n", db.SampleCount(workload), dbPath)
		}
	}

	if tuner.DB.SampleCount(workload) == 0 {
		fmt.Printf("profiling %s (%d test runs)...\n", workload,
			1+len(tuner.Plan.SizeFractions)*len(tuner.Plan.Partitions)*2)
		if err := tuner.Profile(app); err != nil {
			return err
		}
	}
	if dbPath != "" {
		if err := tuner.DB.Save(dbPath); err != nil {
			return err
		}
		fmt.Printf("database saved to %s\n", dbPath)
	}

	o := core.NewOptimizer(tuner.DB)
	o.Gamma = gamma
	var cf *chopper.ConfigFile
	if alg == 2 {
		schemes, err := o.GetWorkloadPar(workload, float64(app.InputBytes()))
		if err != nil {
			return err
		}
		cf = &config.File{Workload: workload}
		for _, s := range schemes {
			cf.Set(config.Entry{
				Signature:         s.Signature,
				Scheme:            s.Partitioner,
				NumPartitions:     s.NumPartitions,
				InsertRepartition: s.InsertRepartition,
			})
		}
	} else {
		cf, err = o.GenerateConfig(workload, float64(app.InputBytes()))
		if err != nil {
			return err
		}
	}

	if explain {
		ex, err := o.Explain(workload, float64(app.InputBytes()))
		if err != nil {
			return err
		}
		fmt.Print(ex)
	}

	if out == "" {
		out = workload + ".conf"
	}
	if err := config.Save(out, cf); err != nil {
		return err
	}
	fmt.Printf("configuration (%d stages) written to %s:\n", len(cf.Entries), out)
	if err := cf.Write(os.Stdout); err != nil {
		return err
	}

	if compare {
		vanilla := chopper.NewSession()
		if err := app.Run(vanilla, app.InputBytes()); err != nil {
			return err
		}
		tuned := chopper.NewSession(chopper.WithDynamicTuning(out))
		if err := app.Run(tuned, app.InputBytes()); err != nil {
			return err
		}
		v, t := vanilla.Elapsed(), tuned.Elapsed()
		fmt.Printf("vanilla %.1f s, chopper %.1f s (%.1f%% improvement)\n", v, t, (v-t)/v*100)
	}
	return nil
}
