package main

// The smoke harness: spawns a real chopperd process and walks the daemon's
// whole lifecycle, including the two durability paths — journal replay
// after SIGKILL and snapshot load after a clean SIGTERM drain. CI runs this
// as the chopperd gate (see ci.sh).

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"chopper/api"
	"chopper/client"
	"chopper/internal/fleetproc"
	"chopper/internal/loadgen"
)

// step logs one smoke phase.
func step(format string, args ...any) {
	fmt.Printf("chopperload: smoke: "+format+"\n", args...)
}

// runSmoke is the CI gate sequence.
func runSmoke(ctx context.Context, binary string) error {
	if binary == "" {
		return fmt.Errorf("-smoke needs -chopperd <binary>")
	}
	dir, err := os.MkdirTemp("", "chopperd-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store := filepath.Join(dir, "profiles.db")
	const workload = "kmeans"

	step("starting chopperd (store %s)", store)
	d, err := fleetproc.Start(ctx, binary, "-addr", "127.0.0.1:0", "-store", store)
	if err != nil {
		return err
	}
	cl := client.New(d.Addr)

	// Train a small grid so recommend has observations to optimize from.
	step("training %s", workload)
	tr, err := cl.Train(ctx, api.TrainRequest{
		Workload:      workload,
		Shrink:        24,
		SizeFractions: []float64{0.5, 1.0},
		Partitions:    []int{150, 300},
	})
	if err != nil {
		return fmt.Errorf("train: %w", err)
	}
	step("trained: %d runs, %d samples", tr.TotalRuns, tr.TotalSamples)

	// Concurrent mixed burst: 64 clients, zero drops allowed. Submits skip
	// recording so the burst leaves the store deterministic for the
	// byte-identity checks below.
	step("burst: 128 requests at 64-way concurrency")
	res, err := loadgen.Run(ctx, loadgen.Config{
		Base:           d.Addr,
		Concurrency:    64,
		Requests:       128,
		Workload:       workload,
		Shrink:         24,
		SubmitFraction: 0.25,
		NoRecord:       true,
	})
	if err != nil {
		return fmt.Errorf("burst: %w", err)
	}
	step("burst: %s", res)
	if res.Dropped > 0 {
		return fmt.Errorf("burst dropped %d requests (first error: %s)", res.Dropped, res.FirstError)
	}

	r1, err := cl.RecommendRaw(ctx, workload, 0)
	if err != nil {
		return fmt.Errorf("recommend: %w", err)
	}
	h1, err := cl.Health(ctx)
	if err != nil {
		return err
	}
	if h1.JournalRecords == 0 {
		return fmt.Errorf("no journal records after training — durability path inert")
	}

	// Crash recovery: SIGKILL (no snapshot) and restart; the journal alone
	// must reproduce the exact recommendation.
	step("SIGKILL and restart (journal replay)")
	if err := d.Kill(); err != nil {
		return err
	}
	d, err = fleetproc.Start(ctx, binary, "-addr", "127.0.0.1:0", "-store", store)
	if err != nil {
		return fmt.Errorf("restart after kill: %w", err)
	}
	cl = client.New(d.Addr)
	r2, err := cl.RecommendRaw(ctx, workload, 0)
	if err != nil {
		return fmt.Errorf("recommend after replay: %w", err)
	}
	if !bytes.Equal(r1, r2) {
		return fmt.Errorf("recommend changed across SIGKILL restart:\nbefore: %s\nafter:  %s", r1, r2)
	}
	h2, err := cl.Health(ctx)
	if err != nil {
		return err
	}
	if h2.JournalRecords != h1.JournalRecords {
		return fmt.Errorf("journal replay count %d != pre-crash %d", h2.JournalRecords, h1.JournalRecords)
	}
	step("replay ok: %d journal records, recommend byte-identical", h2.JournalRecords)

	// Clean drain: SIGTERM with a job in flight; the job must complete and
	// the process exit 0 with a final snapshot.
	step("SIGTERM with an in-flight job (clean drain)")
	subErr := make(chan error, 1)
	go func() {
		_, err := cl.Submit(ctx, api.SubmitRequest{Workload: workload, Shrink: 24, NoRecord: true})
		subErr <- err
	}()
	// SIGTERM only once the daemon has admitted the job (queued or on a
	// worker): a fixed sleep races the request on a slow machine, and a
	// not-yet-admitted submit would bounce off the drain with 503.
	submitDone, submitErr := false, error(nil)
	admitDeadline := time.Now().Add(30 * time.Second)
waitAdmitted:
	for {
		select {
		case submitErr = <-subErr:
			submitDone = true // finished before the drain; equally fine
			break waitAdmitted
		default:
		}
		if h, err := cl.Health(ctx); err == nil && h.QueueDepth+h.ActiveJobs > 0 {
			break
		}
		if time.Now().After(admitDeadline) {
			return fmt.Errorf("submit not admitted within 30s\n%s", d.Output())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := d.Drain(); err != nil {
		return err
	}
	if !submitDone {
		submitErr = <-subErr
	}
	if submitErr != nil {
		return fmt.Errorf("in-flight submit failed during drain: %w\n%s", submitErr, d.Output())
	}
	if fi, err := os.Stat(store); err != nil || fi.Size() == 0 {
		return fmt.Errorf("no snapshot at %s after drain (err %v)", store, err)
	}

	// Snapshot path: restart once more; state now comes from the snapshot.
	step("restart from snapshot")
	d, err = fleetproc.Start(ctx, binary, "-addr", "127.0.0.1:0", "-store", store)
	if err != nil {
		return fmt.Errorf("restart after drain: %w", err)
	}
	cl = client.New(d.Addr)
	r3, err := cl.RecommendRaw(ctx, workload, 0)
	if err != nil {
		return fmt.Errorf("recommend after snapshot restart: %w", err)
	}
	if !bytes.Equal(r1, r3) {
		return fmt.Errorf("recommend changed across drain restart:\nbefore: %s\nafter:  %s", r1, r3)
	}
	h3, err := cl.Health(ctx)
	if err != nil {
		return err
	}
	if h3.JournalRecords != 0 {
		return fmt.Errorf("journal not truncated by snapshot: %d records", h3.JournalRecords)
	}
	if err := d.Drain(); err != nil {
		return err
	}
	step("snapshot ok: recommend byte-identical, journal empty")
	return nil
}
