package main

// The smoke harness: spawns a real chopperd process and walks the daemon's
// whole lifecycle, including the two durability paths — journal replay
// after SIGKILL and snapshot load after a clean SIGTERM drain. CI runs this
// as the chopperd gate (see ci.sh).

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"chopper/api"
	"chopper/client"
	"chopper/internal/loadgen"
)

// daemon is one spawned chopperd process.
type daemon struct {
	cmd  *exec.Cmd
	addr string        // base URL parsed from the announce line
	done chan error    // resolves when the process exits
	out  *bytes.Buffer // captured stdout+stderr (diagnostics)
}

// startDaemon spawns binary with an ephemeral port and the given store
// path, waits for the announce line, and confirms /healthz.
func startDaemon(ctx context.Context, binary, store string) (*daemon, error) {
	cmd := exec.CommandContext(ctx, binary, "-addr", "127.0.0.1:0", "-store", store)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	out := &bytes.Buffer{}
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", binary, err)
	}
	d := &daemon{cmd: cmd, done: make(chan error, 1), out: out}

	addrc := make(chan string, 1)
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			out.WriteString(line + "\n")
			if rest, ok := strings.CutPrefix(line, "chopperd: listening on "); ok {
				select {
				case addrc <- strings.TrimSpace(rest):
				default:
				}
			}
		}
	}()
	go func() {
		err := cmd.Wait()
		<-scanDone
		d.done <- err
	}()

	select {
	case d.addr = <-addrc:
	case err := <-d.done:
		return nil, fmt.Errorf("chopperd exited before announcing: %v\n%s", err, out.String())
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		return nil, fmt.Errorf("chopperd did not announce within 30s\n%s", out.String())
	}
	cl := client.New(d.addr)
	hctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	for {
		if _, err := cl.Health(hctx); err == nil {
			return d, nil
		}
		select {
		case <-hctx.Done():
			_ = cmd.Process.Kill()
			return nil, fmt.Errorf("chopperd never became healthy\n%s", out.String())
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// kill SIGKILLs the daemon (the crash in the crash-recovery check).
func (d *daemon) kill() error {
	if err := d.cmd.Process.Kill(); err != nil {
		return err
	}
	<-d.done // expected non-nil: the process was killed
	return nil
}

// drain SIGTERMs the daemon and requires a clean (exit 0) drain.
func (d *daemon) drain() error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case err := <-d.done:
		if err != nil {
			return fmt.Errorf("drain exited non-zero: %v\n%s", err, d.out.String())
		}
		return nil
	case <-time.After(60 * time.Second):
		_ = d.cmd.Process.Kill()
		return fmt.Errorf("drain did not finish within 60s\n%s", d.out.String())
	}
}

// step logs one smoke phase.
func step(format string, args ...any) {
	fmt.Printf("chopperload: smoke: "+format+"\n", args...)
}

// runSmoke is the CI gate sequence.
func runSmoke(ctx context.Context, binary string) error {
	if binary == "" {
		return fmt.Errorf("-smoke needs -chopperd <binary>")
	}
	dir, err := os.MkdirTemp("", "chopperd-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store := filepath.Join(dir, "profiles.db")
	const workload = "kmeans"

	step("starting chopperd (store %s)", store)
	d, err := startDaemon(ctx, binary, store)
	if err != nil {
		return err
	}
	cl := client.New(d.addr)

	// Train a small grid so recommend has observations to optimize from.
	step("training %s", workload)
	tr, err := cl.Train(ctx, api.TrainRequest{
		Workload:      workload,
		Shrink:        24,
		SizeFractions: []float64{0.5, 1.0},
		Partitions:    []int{150, 300},
	})
	if err != nil {
		return fmt.Errorf("train: %w", err)
	}
	step("trained: %d runs, %d samples", tr.TotalRuns, tr.TotalSamples)

	// Concurrent mixed burst: 64 clients, zero drops allowed. Submits skip
	// recording so the burst leaves the store deterministic for the
	// byte-identity checks below.
	step("burst: 128 requests at 64-way concurrency")
	res, err := loadgen.Run(ctx, loadgen.Config{
		Base:           d.addr,
		Concurrency:    64,
		Requests:       128,
		Workload:       workload,
		Shrink:         24,
		SubmitFraction: 0.25,
		NoRecord:       true,
	})
	if err != nil {
		return fmt.Errorf("burst: %w", err)
	}
	step("burst: %s", res)
	if res.Dropped > 0 {
		return fmt.Errorf("burst dropped %d requests (first error: %s)", res.Dropped, res.FirstError)
	}

	r1, err := cl.RecommendRaw(ctx, workload, 0)
	if err != nil {
		return fmt.Errorf("recommend: %w", err)
	}
	h1, err := cl.Health(ctx)
	if err != nil {
		return err
	}
	if h1.JournalRecords == 0 {
		return fmt.Errorf("no journal records after training — durability path inert")
	}

	// Crash recovery: SIGKILL (no snapshot) and restart; the journal alone
	// must reproduce the exact recommendation.
	step("SIGKILL and restart (journal replay)")
	if err := d.kill(); err != nil {
		return err
	}
	d, err = startDaemon(ctx, binary, store)
	if err != nil {
		return fmt.Errorf("restart after kill: %w", err)
	}
	cl = client.New(d.addr)
	r2, err := cl.RecommendRaw(ctx, workload, 0)
	if err != nil {
		return fmt.Errorf("recommend after replay: %w", err)
	}
	if !bytes.Equal(r1, r2) {
		return fmt.Errorf("recommend changed across SIGKILL restart:\nbefore: %s\nafter:  %s", r1, r2)
	}
	h2, err := cl.Health(ctx)
	if err != nil {
		return err
	}
	if h2.JournalRecords != h1.JournalRecords {
		return fmt.Errorf("journal replay count %d != pre-crash %d", h2.JournalRecords, h1.JournalRecords)
	}
	step("replay ok: %d journal records, recommend byte-identical", h2.JournalRecords)

	// Clean drain: SIGTERM with a job in flight; the job must complete and
	// the process exit 0 with a final snapshot.
	step("SIGTERM with an in-flight job (clean drain)")
	subErr := make(chan error, 1)
	go func() {
		_, err := cl.Submit(ctx, api.SubmitRequest{Workload: workload, Shrink: 24, NoRecord: true})
		subErr <- err
	}()
	// SIGTERM only once the daemon has admitted the job (queued or on a
	// worker): a fixed sleep races the request on a slow machine, and a
	// not-yet-admitted submit would bounce off the drain with 503.
	submitDone, submitErr := false, error(nil)
	admitDeadline := time.Now().Add(30 * time.Second)
waitAdmitted:
	for {
		select {
		case submitErr = <-subErr:
			submitDone = true // finished before the drain; equally fine
			break waitAdmitted
		default:
		}
		if h, err := cl.Health(ctx); err == nil && h.QueueDepth+h.ActiveJobs > 0 {
			break
		}
		if time.Now().After(admitDeadline) {
			return fmt.Errorf("submit not admitted within 30s\n%s", d.out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := d.drain(); err != nil {
		return err
	}
	if !submitDone {
		submitErr = <-subErr
	}
	if submitErr != nil {
		return fmt.Errorf("in-flight submit failed during drain: %w", submitErr)
	}
	if fi, err := os.Stat(store); err != nil || fi.Size() == 0 {
		return fmt.Errorf("no snapshot at %s after drain (err %v)", store, err)
	}

	// Snapshot path: restart once more; state now comes from the snapshot.
	step("restart from snapshot")
	d, err = startDaemon(ctx, binary, store)
	if err != nil {
		return fmt.Errorf("restart after drain: %w", err)
	}
	cl = client.New(d.addr)
	r3, err := cl.RecommendRaw(ctx, workload, 0)
	if err != nil {
		return fmt.Errorf("recommend after snapshot restart: %w", err)
	}
	if !bytes.Equal(r1, r3) {
		return fmt.Errorf("recommend changed across drain restart:\nbefore: %s\nafter:  %s", r1, r3)
	}
	h3, err := cl.Health(ctx)
	if err != nil {
		return err
	}
	if h3.JournalRecords != 0 {
		return fmt.Errorf("journal not truncated by snapshot: %d records", h3.JournalRecords)
	}
	if err := d.drain(); err != nil {
		return err
	}
	step("snapshot ok: recommend byte-identical, journal empty")
	return nil
}
