package main

// The fleet smoke harness: spawns a real 2-shard fleet (two primary
// chopperd processes plus one replica of shard 0) from a chopperd binary,
// fronts it with an in-process fleet router, and proves the deployment
// contract CI gates on — writes land on the owning primary, the replica
// converges by journal shipping, a SIGKILLed replica costs zero
// client-visible errors mid-load, and after a restart the replica catches
// up from its last durable position to byte-identical recommendations.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"chopper/api"
	"chopper/client"
	"chopper/internal/fleet"
	"chopper/internal/fleetproc"
	"chopper/internal/loadgen"
)

// fstep logs one fleet-smoke phase.
func fstep(format string, args ...any) {
	fmt.Printf("chopperload: fleet-smoke: "+format+"\n", args...)
}

// trainVia runs the cheap training grid for workload through cl.
func trainVia(ctx context.Context, cl *client.Client, workload string) error {
	noRange := false
	_, err := cl.Train(ctx, api.TrainRequest{
		Workload:      workload,
		Shrink:        24,
		SizeFractions: []float64{0.5, 1.0},
		Partitions:    []int{150, 300},
		Range:         &noRange,
	})
	return err
}

// waitReplicaSynced polls a replica's /healthz until it reports a fully
// caught-up stream.
func waitReplicaSynced(ctx context.Context, addr string) error {
	cl := client.New(addr)
	deadline := time.Now().Add(30 * time.Second)
	for {
		h, err := cl.Health(ctx)
		if err == nil && h.Status == "ok" && h.ReplicationSynced && h.ReplicationLagBytes == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica %s never synced (last health: %+v, err %v)", addr, h, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// runFleetSmoke is the fleet CI gate sequence.
func runFleetSmoke(ctx context.Context, binary string) error {
	if binary == "" {
		return fmt.Errorf("-fleet-smoke needs -chopperd <binary>")
	}
	dir, err := os.MkdirTemp("", "chopper-fleet-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Workload placement on the 2-shard ring is pinned by the fleet tests:
	// sql → shard 0 (the replicated shard), kmeans → shard 1.
	const wl0, wl1 = "sql", "kmeans"
	if fleet.ShardFor(wl0, 2) != 0 || fleet.ShardFor(wl1, 2) != 1 {
		return fmt.Errorf("workload placement drifted: %s on shard %d, %s on shard %d",
			wl0, fleet.ShardFor(wl0, 2), wl1, fleet.ShardFor(wl1, 2))
	}

	fstep("starting 2 shard primaries")
	p0, err := fleetproc.Start(ctx, binary,
		"-addr", "127.0.0.1:0", "-store", filepath.Join(dir, "shard0.db"),
		"-role", "primary", "-shard-id", "0", "-shard-count", "2")
	if err != nil {
		return err
	}
	defer func() { _ = p0.Kill() }() // best effort; already gone after a drain
	p1, err := fleetproc.Start(ctx, binary,
		"-addr", "127.0.0.1:0", "-store", filepath.Join(dir, "shard1.db"),
		"-role", "primary", "-shard-id", "1", "-shard-count", "2")
	if err != nil {
		return err
	}
	defer func() { _ = p1.Kill() }()

	replicaStore := filepath.Join(dir, "shard0-replica.db")
	startReplica := func(addr string) (*fleetproc.Daemon, error) {
		return fleetproc.Start(ctx, binary,
			"-addr", addr, "-store", replicaStore,
			"-role", "replica", "-shard-id", "0", "-shard-count", "2",
			"-primary", p0.Addr, "-repl-poll", "50ms")
	}
	fstep("starting 1 replica of shard 0")
	r0, err := startReplica("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer func() { _ = r0.Kill() }()
	// The replica keeps this host:port across its restart so the router's
	// static topology reacquires it.
	replicaHostPort := strings.TrimPrefix(r0.Addr, "http://")

	topo := fleet.Topology{Shards: []fleet.Shard{
		{Primary: p0.Addr, Replicas: []string{r0.Addr}},
		{Primary: p1.Addr},
	}}
	router, err := fleet.NewRouter(fleet.RouterConfig{Topology: topo, ProbeInterval: 100 * time.Millisecond})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	stop := make(chan struct{})
	routerDone := make(chan struct{})
	go func() {
		defer close(routerDone)
		router.Run(stop)
	}()
	httpSrv := &http.Server{Handler: router.Handler()}
	go func() { _ = httpSrv.Serve(ln) }() // ends via Close below
	defer func() {
		_ = httpSrv.Close()
		close(stop)
		<-routerDone
	}()
	routerURL := "http://" + ln.Addr().String()
	fstep("router at %s fronting 2 shards", routerURL)
	rcl := client.New(routerURL)

	fstep("training %s and %s through the router", wl0, wl1)
	if err := trainVia(ctx, rcl, wl0); err != nil {
		return fmt.Errorf("train %s via router: %w", wl0, err)
	}
	if err := trainVia(ctx, rcl, wl1); err != nil {
		return fmt.Errorf("train %s via router: %w", wl1, err)
	}

	// Each primary must own exactly its shard's workload — proof the router
	// fanned the writes by hash, not round-robin.
	for _, check := range []struct {
		addr, owns, foreign string
	}{{p0.Addr, wl0, wl1}, {p1.Addr, wl1, wl0}} {
		wls, err := client.New(check.addr).Workloads(ctx)
		if err != nil {
			return err
		}
		runs := map[string]int{}
		for _, info := range wls.Workloads {
			runs[info.Name] = info.Runs
		}
		if runs[check.owns] == 0 || runs[check.foreign] != 0 {
			return fmt.Errorf("%s owns %s but has runs %v", check.addr, check.owns, runs)
		}
	}
	// The merged fleet view shows both workloads trained.
	merged, err := rcl.Workloads(ctx)
	if err != nil {
		return fmt.Errorf("merged workloads: %w", err)
	}
	for _, want := range []string{wl0, wl1} {
		found := false
		for _, info := range merged.Workloads {
			found = found || (info.Name == want && info.Runs > 0)
		}
		if !found {
			return fmt.Errorf("merged /v1/workloads missing trained %s: %+v", want, merged.Workloads)
		}
	}
	fstep("writes landed on owning primaries; merged workload view ok")

	fstep("waiting for replica catch-up")
	if err := waitReplicaSynced(ctx, r0.Addr); err != nil {
		return err
	}

	// Read load across both shards through the router, with the replica
	// SIGKILLed mid-load: a dead replica may cost the router one internal
	// retry, never a client-visible error.
	const loadRequests = 6000
	fstep("read load (%d requests) with mid-load replica SIGKILL", loadRequests)
	loadStart := time.Now()
	loadDone := make(chan *loadgen.Result, 1)
	loadErr := make(chan error, 1)
	go func() {
		res, err := loadgen.Run(ctx, loadgen.Config{
			Targets:        []string{routerURL},
			Workloads:      []string{wl0, wl1},
			ShardCount:     2,
			Concurrency:    8,
			Requests:       loadRequests,
			SubmitFraction: 0, // reads only; writes would mutate the stores mid-comparison
		})
		loadDone <- res
		loadErr <- err
	}()
	time.Sleep(150 * time.Millisecond)
	if err := r0.Kill(); err != nil {
		return fmt.Errorf("kill replica: %w", err)
	}
	killedAt := time.Since(loadStart).Seconds()
	res := <-loadDone
	if err := <-loadErr; err != nil {
		return fmt.Errorf("fleet load: %w", err)
	}
	fstep("load: %s", res)
	if b := res.BreakdownString(); b != "" {
		fmt.Println(b)
	}
	if res.Dropped > 0 {
		return fmt.Errorf("%d routing errors surfaced to clients after replica kill (first: %s)", res.Dropped, res.FirstError)
	}
	if res.Elapsed <= killedAt {
		return fmt.Errorf("load finished (%.2fs) before the replica kill (%.2fs) — not a mid-load crash", res.Elapsed, killedAt)
	}
	fstep("zero client-visible errors across the replica crash")

	// Advance shard 0's journal while its replica is down, then restart the
	// replica: it must resume from its last durable position and converge.
	fstep("training more %s while the replica is down", wl0)
	if err := trainVia(ctx, rcl, wl0); err != nil {
		return fmt.Errorf("train with dead replica: %w", err)
	}
	fstep("restarting the replica at %s (catch-up from durable position)", replicaHostPort)
	r0, err = startReplica(replicaHostPort)
	if err != nil {
		return fmt.Errorf("restart replica: %w", err)
	}
	defer func() { _ = r0.Kill() }()
	if err := waitReplicaSynced(ctx, r0.Addr); err != nil {
		return err
	}

	// The caught-up replica answers byte-identically to its primary.
	praw, err := client.New(p0.Addr).RecommendRaw(ctx, wl0, 0)
	if err != nil {
		return err
	}
	rraw, err := client.New(r0.Addr).RecommendRaw(ctx, wl0, 0)
	if err != nil {
		return err
	}
	if !bytes.Equal(praw, rraw) {
		return fmt.Errorf("replica recommendation differs from primary after catch-up:\nprimary: %s\nreplica: %s", praw, rraw)
	}
	fstep("replica recommendation byte-identical to primary after catch-up")

	// The router's next probes must reacquire the restarted replica and
	// report a fully live fleet.
	deadline := time.Now().Add(15 * time.Second)
	for {
		var rh api.RouterHealth
		resp, err := http.Get(routerURL + "/healthz")
		if err == nil {
			err = decodeJSON(resp, &rh)
		}
		if err == nil && rh.Status == "ok" && allBackendsReady(rh) {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("router never reacquired the fleet (last: %+v, err %v)", rh, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	fstep("router healthz: all backends live and ready")

	fstep("draining the fleet")
	if err := r0.Drain(); err != nil {
		return fmt.Errorf("drain replica: %w", err)
	}
	for _, p := range []*fleetproc.Daemon{p0, p1} {
		if err := p.Drain(); err != nil {
			return fmt.Errorf("drain primary: %w", err)
		}
	}
	return nil
}

// decodeJSON reads one JSON response body.
func decodeJSON(resp *http.Response, v any) error {
	defer func() { _ = resp.Body.Close() }() // decoded below
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// allBackendsReady reports whether every backend in the fleet view is live
// and serving reads.
func allBackendsReady(rh api.RouterHealth) bool {
	for _, sh := range rh.Shards {
		for _, b := range sh.Backends {
			if !b.Live || !b.Ready {
				return false
			}
		}
	}
	return true
}
