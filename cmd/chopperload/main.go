// Command chopperload is the closed-loop load generator for chopperd, plus
// the end-to-end smoke harness CI runs.
//
// Load-generation mode (default) drives a running daemon with a mixed
// recommend/submit workload and prints a latency/throughput summary:
//
//	chopperload -addr http://127.0.0.1:7077 -n 256 -c 16 -submit-frac 0.25
//
// A load can also spread across several targets and workloads with a
// per-shard breakdown (fleet deployments; see internal/fleet):
//
//	chopperload -targets http://router:7070 -workloads kmeans,sql -shard-count 2
//
// Smoke mode spawns its own daemon from a chopperd binary and walks the
// full lifecycle — train, concurrent mixed burst with zero drops, recommend,
// SIGKILL + restart with byte-identical recommend (journal replay), clean
// SIGTERM drain with an in-flight job, restart from the final snapshot:
//
//	chopperload -smoke -chopperd ./chopperd
//
// Fleet-smoke mode spawns a 2-shard fleet (two primaries plus a replica)
// behind an in-process router and gates on the deployment contract: hashed
// write placement, replica catch-up by journal shipping, zero client-visible
// errors across a mid-load replica SIGKILL, and byte-identical
// recommendations after the replica restarts and catches up:
//
//	chopperload -fleet-smoke -chopperd ./chopperd
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"chopper/api"
	"chopper/client"
	"chopper/internal/loadgen"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:7077", "chopperd base URL")
	targets := flag.String("targets", "", "comma-separated target URLs (shard daemons or routers); overrides -addr")
	n := flag.Int("n", 64, "total request budget")
	c := flag.Int("c", 8, "closed-loop concurrency")
	workload := flag.String("workload", "kmeans", "workload to exercise")
	workloadList := flag.String("workloads", "", "comma-separated workloads to rotate through; overrides -workload")
	shardCount := flag.Int("shard-count", 0, "fleet shard count for the per-shard breakdown (0: off)")
	inputBytes := flag.Int64("bytes", 0, "logical input size override")
	shrink := flag.Int("shrink", 0, "physical shrink factor for submits")
	submitFrac := flag.Float64("submit-frac", 0.25, "fraction of submit (vs recommend) requests")
	trainFrac := flag.Float64("train-frac", 0, "fraction of cheap incremental train requests")
	tuned := flag.Bool("tuned", false, "submit jobs under the CHOPPER configuration")
	noRecord := flag.Bool("no-record", false, "do not fold submits into the profile store")
	train := flag.Bool("train", false, "run a small training pass before the load")
	timeout := flag.Duration("timeout", 10*time.Minute, "overall run deadline")
	smoke := flag.Bool("smoke", false, "run the end-to-end smoke harness instead of a plain load")
	fleetSmoke := flag.Bool("fleet-smoke", false, "run the fleet smoke harness (2 shards + replica + router)")
	chopperd := flag.String("chopperd", "", "path to the chopperd binary (smoke modes)")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *smoke {
		if err := runSmoke(ctx, *chopperd); err != nil {
			fmt.Fprintf(os.Stderr, "chopperload: smoke FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("chopperload: smoke PASSED")
		return
	}
	if *fleetSmoke {
		if err := runFleetSmoke(ctx, *chopperd); err != nil {
			fmt.Fprintf(os.Stderr, "chopperload: fleet-smoke FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("chopperload: fleet-smoke PASSED")
		return
	}
	cfg := loadgen.Config{
		Base:           *addr,
		Targets:        splitList(*targets),
		Concurrency:    *c,
		Requests:       *n,
		Workload:       *workload,
		Workloads:      splitList(*workloadList),
		InputBytes:     *inputBytes,
		Shrink:         *shrink,
		SubmitFraction: *submitFrac,
		TrainFraction:  *trainFrac,
		ShardCount:     *shardCount,
		Tuned:          *tuned,
		NoRecord:       *noRecord,
	}
	if err := runLoad(ctx, cfg, *train); err != nil {
		fmt.Fprintf(os.Stderr, "chopperload: %v\n", err)
		os.Exit(1)
	}
}

// splitList parses a comma-separated flag value, dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func runLoad(ctx context.Context, cfg loadgen.Config, train bool) error {
	base := cfg.Base
	if len(cfg.Targets) > 0 {
		base = cfg.Targets[0]
	}
	cl := client.New(base)
	if _, err := cl.Health(ctx); err != nil {
		return fmt.Errorf("daemon not reachable at %s: %w", base, err)
	}
	if train {
		workloads := cfg.Workloads
		if len(workloads) == 0 {
			workloads = []string{cfg.Workload}
		}
		for _, w := range workloads {
			fmt.Printf("chopperload: training %s...\n", w)
			tr, err := cl.Train(ctx, api.TrainRequest{
				Workload:      w,
				InputBytes:    cfg.InputBytes,
				Shrink:        cfg.Shrink,
				SizeFractions: []float64{0.5, 1.0},
				Partitions:    []int{150, 300},
			})
			if err != nil {
				return fmt.Errorf("train %s: %w", w, err)
			}
			fmt.Printf("chopperload: trained %s: %d runs (%d total, %d samples)\n",
				tr.Workload, tr.Runs, tr.TotalRuns, tr.TotalSamples)
		}
	}
	res, err := loadgen.Run(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Println("chopperload: " + res.String())
	if b := res.BreakdownString(); b != "" {
		fmt.Println(b)
	}
	if res.Dropped > 0 {
		return fmt.Errorf("%d requests dropped (first error: %s)", res.Dropped, res.FirstError)
	}
	return nil
}
