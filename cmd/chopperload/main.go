// Command chopperload is the closed-loop load generator for chopperd, plus
// the end-to-end smoke harness CI runs.
//
// Load-generation mode (default) drives a running daemon with a mixed
// recommend/submit workload and prints a latency/throughput summary:
//
//	chopperload -addr http://127.0.0.1:7077 -n 256 -c 16 -submit-frac 0.25
//
// Smoke mode spawns its own daemon from a chopperd binary and walks the
// full lifecycle — train, concurrent mixed burst with zero drops, recommend,
// SIGKILL + restart with byte-identical recommend (journal replay), clean
// SIGTERM drain with an in-flight job, restart from the final snapshot:
//
//	chopperload -smoke -chopperd ./chopperd
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"chopper/api"
	"chopper/client"
	"chopper/internal/loadgen"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:7077", "chopperd base URL")
	n := flag.Int("n", 64, "total request budget")
	c := flag.Int("c", 8, "closed-loop concurrency")
	workload := flag.String("workload", "kmeans", "workload to exercise")
	inputBytes := flag.Int64("bytes", 0, "logical input size override")
	shrink := flag.Int("shrink", 0, "physical shrink factor for submits")
	submitFrac := flag.Float64("submit-frac", 0.25, "fraction of submit (vs recommend) requests")
	tuned := flag.Bool("tuned", false, "submit jobs under the CHOPPER configuration")
	noRecord := flag.Bool("no-record", false, "do not fold submits into the profile store")
	train := flag.Bool("train", false, "run a small training pass before the load")
	timeout := flag.Duration("timeout", 10*time.Minute, "overall run deadline")
	smoke := flag.Bool("smoke", false, "run the end-to-end smoke harness instead of a plain load")
	chopperd := flag.String("chopperd", "", "path to the chopperd binary (smoke mode)")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *smoke {
		if err := runSmoke(ctx, *chopperd); err != nil {
			fmt.Fprintf(os.Stderr, "chopperload: smoke FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("chopperload: smoke PASSED")
		return
	}
	if err := runLoad(ctx, *addr, *n, *c, *workload, *inputBytes, *shrink, *submitFrac, *tuned, *noRecord, *train); err != nil {
		fmt.Fprintf(os.Stderr, "chopperload: %v\n", err)
		os.Exit(1)
	}
}

func runLoad(ctx context.Context, addr string, n, c int, workload string, inputBytes int64, shrink int, submitFrac float64, tuned, noRecord, train bool) error {
	cl := client.New(addr)
	if _, err := cl.Health(ctx); err != nil {
		return fmt.Errorf("daemon not reachable at %s: %w", addr, err)
	}
	if train {
		fmt.Printf("chopperload: training %s...\n", workload)
		tr, err := cl.Train(ctx, api.TrainRequest{
			Workload:      workload,
			InputBytes:    inputBytes,
			Shrink:        shrink,
			SizeFractions: []float64{0.5, 1.0},
			Partitions:    []int{150, 300},
		})
		if err != nil {
			return fmt.Errorf("train: %w", err)
		}
		fmt.Printf("chopperload: trained %s: %d runs (%d total, %d samples)\n",
			tr.Workload, tr.Runs, tr.TotalRuns, tr.TotalSamples)
	}
	res, err := loadgen.Run(ctx, loadgen.Config{
		Base:           addr,
		Concurrency:    c,
		Requests:       n,
		Workload:       workload,
		InputBytes:     inputBytes,
		Shrink:         shrink,
		SubmitFraction: submitFrac,
		Tuned:          tuned,
		NoRecord:       noRecord,
	})
	if err != nil {
		return err
	}
	fmt.Println("chopperload: " + res.String())
	if res.Dropped > 0 {
		return fmt.Errorf("%d requests dropped (first error: %s)", res.Dropped, res.FirstError)
	}
	return nil
}
