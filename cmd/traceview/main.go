// Command traceview inspects event logs written by sparksim -trace or
// Session.SaveTrace: a run summary, per-node load, and a stage Gantt chart.
//
// Usage:
//
//	traceview run.json [-width 100] [-summary] [-gantt]
package main

import (
	"flag"
	"fmt"
	"os"

	"chopper/internal/trace"
)

func main() {
	width := flag.Int("width", 100, "gantt chart width in columns")
	summary := flag.Bool("summary", true, "print the run summary")
	gantt := flag.Bool("gantt", true, "print the stage timeline")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceview [flags] <run.json>")
		os.Exit(2)
	}
	l, err := trace.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
	if *summary {
		fmt.Print(l.Summary())
		fmt.Println()
	}
	if *gantt {
		fmt.Print(l.Gantt(*width))
	}
}
