// Command experiments regenerates the paper's tables and figures on the
// simulated cluster.
//
// Usage:
//
//	experiments [-quick] [-only fig7,fig8,...] [-list] [-parallel N]
//	            [-cpuprofile out.pprof] [-memprofile out.pprof]
//
// Experiment ids: tab1, fig2, fig3, fig4, fig6, fig7, fig8, tab2, tab3,
// fig9, fig10, fig11, fig12, fig13, fig14, ablations.
//
// -parallel bounds the driver worker pool running independent sweep points
// concurrently (0 = GOMAXPROCS); any width produces byte-identical output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"chopper/internal/experiments"
	"chopper/internal/experiments/driver"
	"chopper/internal/profiling"
)

var ids = []string{
	"tab1", "fig2", "fig3", "fig4", "fig6", "fig7", "fig8", "tab2", "tab3",
	"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "ablations", "failure", "accuracy", "retrain", "sensitivity",
}

func main() {
	quick := flag.Bool("quick", false, "shrink physical datasets and profiling grids for a fast pass")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	parallel := flag.Int("parallel", 0, "worker pool width for independent sweep runs (0 = GOMAXPROCS, 1 = sequential)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(ids, "\n"))
		return
	}
	driver.SetParallelism(*parallel)
	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	want := map[string]bool{}
	if *only == "" {
		for _, id := range ids {
			want[id] = true
		}
	} else {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	runErr := run(want, *quick)
	stopCPU()
	if err := profiling.WriteHeap(*memprofile); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "experiments:", runErr)
		os.Exit(1)
	}
}

func run(want map[string]bool, quick bool) error {
	if want["tab1"] {
		fmt.Println(experiments.TableI())
	}

	if want["fig2"] || want["fig3"] || want["fig4"] {
		m, err := experiments.RunMotivation(quick, nil)
		if err != nil {
			return err
		}
		if want["fig2"] {
			fmt.Println(m.Fig2())
		}
		if want["fig3"] {
			fmt.Println(m.Fig3())
		}
		if want["fig4"] {
			fmt.Println(m.Fig4())
			if t, err := m.ExtremePartitions(quick); err == nil {
				fmt.Println(t)
			} else {
				return err
			}
		}
	}

	needEval := false
	for _, id := range []string{"fig6", "fig7", "fig8", "tab2", "tab3", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14"} {
		if want[id] {
			needEval = true
		}
	}
	if needEval {
		ev, err := experiments.RunEvaluation(quick)
		if err != nil {
			return err
		}
		if want["fig6"] {
			fmt.Println("== Fig. 6 — generated KMeans configuration ==")
			fmt.Println(ev.Fig6())
		}
		if want["fig7"] {
			fmt.Println(ev.Fig7())
		}
		if want["fig8"] {
			fmt.Println(ev.Fig8())
		}
		if want["tab2"] {
			fmt.Println(ev.TableII())
		}
		if want["tab3"] {
			fmt.Println(ev.TableIII())
		}
		if want["fig9"] {
			fmt.Println(ev.Fig9())
		}
		if want["fig10"] {
			fmt.Println(ev.Fig10())
		}
		if want["fig11"] {
			fmt.Println(ev.Fig11().Table())
		}
		if want["fig12"] {
			fmt.Println(ev.Fig12().Table())
		}
		if want["fig13"] {
			fmt.Println(ev.Fig13().Table())
		}
		if want["fig14"] {
			fmt.Println(ev.Fig14().Table())
		}
	}

	if want["ablations"] {
		tables, err := experiments.RunAblations(quick)
		if err != nil {
			return err
		}
		for _, t := range tables {
			fmt.Println(t)
		}
	}

	if want["failure"] {
		_, tbl, err := experiments.RunFailureStudy(quick, 5)
		if err != nil {
			return err
		}
		fmt.Println(tbl)
	}

	if want["accuracy"] {
		tbl, _, err := experiments.ModelAccuracy(quick)
		if err != nil {
			return err
		}
		fmt.Println(tbl)
	}

	if want["retrain"] {
		tbl, err := experiments.OnlineRetraining(quick, 3)
		if err != nil {
			return err
		}
		fmt.Println(tbl)
	}

	if want["sensitivity"] {
		tbl, err := experiments.SensitivityStudy(quick)
		if err != nil {
			return err
		}
		fmt.Println(tbl)
	}
	return nil
}
