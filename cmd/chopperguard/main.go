// Command chopperguard runs the lock-contract and durability-protocol
// static verification family (internal/lint's Guard rules) over the
// module and exits non-zero on any finding.
//
// The four rules verify the service layer's concurrency contracts:
//
//	lockcontract — guarded fields (inferred from write-under-lock
//	               evidence) accessed with their mutex held, write mode
//	               for mutation
//	copyescape   — copy-on-read accessors return deep copies, never
//	               aliases of guarded maps/slices
//	journalorder — DB mutations journaled inside their write-lock
//	               section; no acknowledgement before the append
//	tocou        — read-locked checks re-validated under the write lock
//	               before acting
//
// Usage:
//
//	chopperguard [-json] [-rules=<comma-list>] [packages]
//
// Packages default to ./... relative to the enclosing module root;
// diagnostics are scoped to the contract-bearing packages
// (internal/core, internal/service). The -json flag emits findings in
// the unified wire schema (tool/rule/pos/msg/severity). Exit status: 0
// clean, 1 findings, 2 load/parse or usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"chopper/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics in the unified wire-JSON schema")
	rules := flag.String("rules", "", "comma-separated rule names to run (default: the guard family)")
	flag.Parse()
	os.Exit(run(flag.Args(), *jsonOut, *rules))
}

// selectAnalyzers resolves the -rules flag value against the guard family
// (and, through ByName, any chopperlint rule asked for explicitly).
func selectAnalyzers(rules string) ([]*lint.Analyzer, error) {
	if rules == "" {
		return lint.Guard(), nil
	}
	var names []string
	for _, n := range strings.Split(rules, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("-rules lists no rule names")
	}
	return lint.ByName(names)
}

func run(patterns []string, jsonOut bool, rules string) int {
	analyzers, err := selectAnalyzers(rules)
	if err != nil {
		return fail(err)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return fail(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		return fail(err)
	}
	// One shared Program: the whole-program guard fact (type discovery,
	// entry propagation, the four checks) is computed once and shared by
	// every file's rule run.
	prog, err := lint.NewProgram(root)
	if err != nil {
		return fail(err)
	}
	dirs, err := prog.Loader.Match(patterns)
	if err != nil {
		return fail(err)
	}
	if len(dirs) == 0 {
		return fail(fmt.Errorf("no packages match %v", patterns))
	}

	var diags []lint.Diagnostic
	for _, dir := range dirs {
		pkg, err := prog.Package(dir)
		if err != nil {
			return fail(err)
		}
		diags = append(diags, lint.Run(pkg, analyzers)...)
	}
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil {
			diags[i].File = rel
		}
	}
	diags = lint.SortDiagnostics(diags)

	if jsonOut {
		if err := lint.WriteJSONTool(os.Stdout, "chopperguard", diags); err != nil {
			return fail(err)
		}
	} else if err := lint.WriteText(os.Stdout, diags); err != nil {
		return fail(err)
	}
	if len(diags) > 0 {
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "chopperguard: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "chopperguard:", err)
	return 2
}
