// Command chopperkey is the static key-flow gate. It has two halves:
//
//  1. a lint sweep: the three flow-sensitive key rules (keydrift,
//     shufflewaste, constkey) run over the module's non-test packages,
//     together with the suppression audit so stale lint:ignore
//     directives naming key rules are reported; and
//  2. a key-fact drift gate (-workload): the symbolic evaluator
//     (internal/plan/extract) derives per-RDD KeyFacts for every job of
//     the selected workloads, the workload runs for real on a shrunk
//     dataset, and the statically predicted key shapes — operator, keyed
//     state, partitioner presence/scheme/identity-group, dependency
//     kinds — are diffed node-for-node against the runtime lineage.
//
// Any divergence means the KeyFacts lattice no longer models what the
// rdd layer actually builds, which would silently poison both the lint
// rules and the cold-start seeding that consume it.
//
// Usage:
//
//	chopperkey [-json] [-workload=none|all|kmeans|pca|sql|pagerank] [-shrink=N] [packages]
//
// Packages default to ./... relative to the enclosing module root and
// scope only the lint half; -workload=none skips the drift half (the
// default is none so the bare invocation stays fast for editors). The
// -json flag emits all findings on stdout in the unified wire schema
// shared by the gate CLIs (tool/rule/pos/msg/severity); human-readable
// lines move to stderr. Exit status: 0 clean, 1 findings, 2 error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"chopper/internal/experiments"
	"chopper/internal/lint"
	"chopper/internal/plan/extract"
	"chopper/internal/workloads"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings on stdout in the unified wire-JSON schema")
	workload := flag.String("workload", "none", "workloads to key-fact drift gate (none, all, kmeans, pca, sql, pagerank)")
	shrink := flag.Int("shrink", 6, "dataset shrink factor for the runtime half of the drift gate")
	flag.Parse()
	os.Exit(run(flag.Args(), *jsonOut, *workload, *shrink))
}

// reporter accumulates findings in the unified wire schema while printing
// human-readable lines (to stdout normally, stderr under -json, which
// reserves stdout for the array).
type reporter struct {
	json bool
	wire []lint.WireDiagnostic
}

func (r *reporter) finding(rule, pos, msg string) {
	r.wire = append(r.wire, lint.WireDiagnostic{
		Tool: "chopperkey", Rule: rule, Pos: pos, Msg: msg, Severity: "error",
	})
	out := os.Stdout
	if r.json {
		out = os.Stderr
	}
	_, _ = fmt.Fprintf(out, "%s: %s: %s\n", pos, rule, msg)
}

func run(patterns []string, jsonOut bool, workload string, shrink int) int {
	r := &reporter{json: jsonOut}
	if err := lintSweep(patterns, r); err != nil {
		return fail(err)
	}
	if workload != "none" {
		if err := driftGate(workload, shrink, r); err != nil {
			return fail(err)
		}
	}
	if jsonOut {
		if err := lint.WriteWire(os.Stdout, r.wire); err != nil {
			return fail(err)
		}
	}
	if len(r.wire) > 0 {
		fmt.Fprintf(os.Stderr, "chopperkey: %d finding(s)\n", len(r.wire))
		return 1
	}
	return 0
}

// lintSweep runs the key rule family over the matched packages.
func lintSweep(patterns []string, r *reporter) error {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		return err
	}
	prog, err := lint.NewProgram(root)
	if err != nil {
		return err
	}
	dirs, err := prog.Loader.Match(patterns)
	if err != nil {
		return err
	}
	if len(dirs) == 0 {
		return fmt.Errorf("no packages match %v", patterns)
	}
	var diags []lint.Diagnostic
	for _, dir := range dirs {
		pkg, err := prog.Package(dir)
		if err != nil {
			return err
		}
		diags = append(diags, lint.Run(pkg, lint.Key())...)
	}
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil {
			diags[i].File = rel
		}
	}
	for _, d := range lint.SortDiagnostics(diags) {
		r.finding(d.Rule, fmt.Sprintf("%s:%d:%d", d.File, d.Line, d.Col), d.Message)
	}
	return nil
}

// driftGate extracts KeyFacts for each selected workload, runs it for
// real, and diffs the static key shapes against the runtime lineage.
func driftGate(name string, shrink int, r *reporter) error {
	var targets []workloads.Workload
	if name == "all" {
		targets = workloads.AllWithExtensions()
	} else {
		w, err := workloads.ByName(name)
		if err != nil {
			return err
		}
		targets = []workloads.Workload{w}
	}
	ex, err := extract.New(".")
	if err != nil {
		return err
	}
	for _, w := range targets {
		workloads.Shrink(w, shrink)
		bytes := w.DefaultInputBytes()
		rep, err := ex.Extract(w, bytes, experiments.DefaultParallelism)
		if err != nil {
			return err
		}
		var keys extract.KeyCapture
		if _, _, err := experiments.RunWorkload(w, bytes, experiments.Options{OnPlan: keys.Hook()}); err != nil {
			return err
		}
		for _, d := range extract.KeyDrift(rep, keys.Jobs()) {
			r.finding("keyfacts", w.Name(), d)
		}
	}
	return nil
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "chopperkey:", err)
	return 2
}
