// Command chopperverify runs CHOPPER's correctness verifiers end to end
// over the built-in workloads (the same pipelines the examples/ programs
// build): for every workload it executes a vanilla run, forced uniform
// hash/range configurations at the extremes of the search grid, and the
// full CHOPPER pipeline (profile → optimize → tuned co-partitioned run),
// with
//
//   - the plan-IR verifier (internal/plan/verify) observing every job's
//     stage graph: acyclicity, shuffle boundaries at wide dependencies,
//     co-partitioned join inputs, partition counts within the executors'
//     memory budget, partitioner/key-type compatibility; and
//   - the configuration verifier (core.VerifySchemes) checking every
//     optimizer emission: known signatures, valid schemes, counts inside
//     the searched grid, join groups agreeing on one scheme, fixed stages
//     only retuned through inserted repartition phases.
//
// Usage:
//
//	chopperverify [-workload=all|kmeans|pca|sql|pagerank] [-shrink=N] [-v] [-json]
//
// Datasets are shrunk by -shrink (default 6) so the sweep stays fast;
// logical sizes and the cost model are unchanged, so the plans exercised
// are the real ones. The -json flag emits findings on stdout in the
// unified wire schema shared by the gate CLIs (tool/rule/pos/msg/
// severity); human-readable lines move to stderr. Exit status: 0 clean,
// 1 violations, 2 run error.
package main

import (
	"flag"
	"fmt"
	"os"

	"chopper/internal/cluster"
	"chopper/internal/core"
	"chopper/internal/dag"
	"chopper/internal/experiments"
	"chopper/internal/lint"
	"chopper/internal/plan/extract"
	"chopper/internal/plan/verify"
	"chopper/internal/rdd"
	"chopper/internal/workloads"
)

func main() {
	workload := flag.String("workload", "all", "workload to verify (all, kmeans, pca, sql, pagerank)")
	shrink := flag.Int("shrink", 6, "dataset shrink factor for fast runs (1 = paper size)")
	verbose := flag.Bool("v", false, "list every run, not just violations")
	static := flag.Bool("static", false, "additionally extract each workload's plans statically (internal/plan/extract), verify them, and diff them against the vanilla run's submitted plans")
	jsonOut := flag.Bool("json", false, "emit findings on stdout in the unified wire-JSON schema")
	flag.Parse()
	os.Exit(run(*workload, *shrink, *verbose, *static, *jsonOut))
}

// reporter accumulates findings in the unified wire schema while printing
// human-readable lines (to stdout normally, stderr under -json, which
// reserves stdout for the array).
type reporter struct {
	json bool
	wire []lint.WireDiagnostic
}

func (r *reporter) finding(rule, pos, msg string) {
	r.wire = append(r.wire, lint.WireDiagnostic{
		Tool: "chopperverify", Rule: rule, Pos: pos, Msg: msg, Severity: "error",
	})
	out := os.Stdout
	if r.json {
		out = os.Stderr
	}
	_, _ = fmt.Fprintf(out, "%s: %s: %s\n", pos, rule, msg)
}

func run(name string, shrink int, verbose, static, jsonOut bool) int {
	var targets []workloads.Workload
	if name == "all" {
		targets = workloads.AllWithExtensions()
	} else {
		w, err := workloads.ByName(name)
		if err != nil {
			return fail(err)
		}
		targets = []workloads.Workload{w}
	}

	var ex *extract.Extractor
	if static {
		var err error
		if ex, err = extract.New("."); err != nil {
			return fail(err)
		}
	}

	rep := &reporter{json: jsonOut}
	for _, w := range targets {
		workloads.Shrink(w, shrink)
		if err := verifyWorkload(w, ex, verbose, rep); err != nil {
			return fail(fmt.Errorf("%s: %w", w.Name(), err))
		}
	}
	if jsonOut {
		if err := lint.WriteWire(os.Stdout, rep.wire); err != nil {
			return fail(err)
		}
	}
	if len(rep.wire) > 0 {
		fmt.Fprintf(os.Stderr, "chopperverify: %d violation(s)\n", len(rep.wire))
		return 1
	}
	if verbose {
		fmt.Fprintln(os.Stderr, "chopperverify: all plans and configurations verified clean")
	}
	return 0
}

// verifyWorkload runs one workload under every configuration class with the
// verifiers observing, and prints each violation. When ex is non-nil it
// additionally extracts the workload's plans statically, verifies them, and
// diffs them against the vanilla run's submitted plans (the chopperplan
// drift gate, inline). Returns the count.
func verifyWorkload(w workloads.Workload, ex *extract.Extractor, verbose bool, r *reporter) error {
	planObserver := func(label string) func([]verify.Violation) {
		return func(vs []verify.Violation) {
			for _, v := range vs {
				r.finding("plan", w.Name()+"/"+label, v.String())
			}
		}
	}
	schemeObserver := func(label string) func(string, []core.SchemeViolation) {
		return func(_ string, vs []core.SchemeViolation) {
			for _, v := range vs {
				r.finding("config", w.Name()+"/"+label, v.String())
			}
		}
	}
	step := func(label string) {
		if verbose {
			fmt.Fprintf(os.Stderr, "chopperverify: %s: %s\n", w.Name(), label)
		}
	}
	bytes := w.DefaultInputBytes()

	// Static extraction (-static): reconstruct the plans without running,
	// verify them, and capture the vanilla run below for the drift diff.
	var rep *extract.Report
	var cap extract.Capture
	if ex != nil {
		step("static-extract")
		var err error
		if rep, err = ex.Extract(w, bytes, experiments.DefaultParallelism); err != nil {
			return err
		}
		for _, v := range rep.Verify(verify.DefaultLimits(cluster.PaperCluster())) {
			r.finding("plan", w.Name()+"/static", v.String())
		}
	}

	// Vanilla plus the extremes of the search grid: the widest partition
	// counts stress the memory-bound check, the range scheme stresses the
	// partitioner-compatibility checks.
	forced := []struct {
		label string
		cfg   dag.StageConfigurator
	}{
		{"vanilla", nil},
		{"force-hash-2000", &core.ForceAll{Spec: dag.SchemeSpec{Scheme: rdd.SchemeHash, NumPartitions: 2000}}},
		{"force-range-100", &core.ForceAll{Spec: dag.SchemeSpec{Scheme: rdd.SchemeRange, NumPartitions: 100}}},
	}
	for _, f := range forced {
		step(f.label)
		opt := experiments.Options{Configurator: f.cfg, OnPlanViolations: planObserver(f.label)}
		if rep != nil && f.cfg == nil {
			opt.OnPlan = cap.Hook()
		}
		if _, _, err := experiments.RunWorkload(w, bytes, opt); err != nil {
			return err
		}
	}
	if rep != nil {
		for _, d := range extract.Drift(rep, cap.Jobs()) {
			r.finding("drift", w.Name()+"/static", d)
		}
	}

	// The full pipeline: profiling sweep, optimization (configuration
	// verifier), tuned co-partitioned run (plan verifier over the retuned
	// stage graphs).
	step("chopper-pipeline")
	plan := experiments.ProfilePlan{
		SizeFractions: []float64{0.5, 1.0},
		Partitions:    []int{150, 300, 450, 600},
		Schemes:       []rdd.SchemeName{rdd.SchemeHash, rdd.SchemeRange},
	}
	opt := experiments.Options{
		OnPlanViolations:   planObserver("chopper-pipeline"),
		OnSchemeViolations: schemeObserver("chopper-pipeline"),
	}
	if _, err := experiments.Compare(w, bytes, plan, opt); err != nil {
		return err
	}
	return nil
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "chopperverify:", err)
	return 2
}
