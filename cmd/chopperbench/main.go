// Command chopperbench is the benchmark-regression harness: it measures the
// hot-path kernels (shuffle partitioning, reduce-side merge, byte sizing —
// the columnar arena paths the engine actually runs), the end-to-end
// experiment sweep at two driver widths, the chopperd serving stack under
// closed-loop load, and the fleet saturation table (1/2/4 in-process shards
// behind the fleet router, with throughput/RSS/GC per size), then
// optionally gates the numbers against a committed baseline (BENCH_10.json).
//
// Usage:
//
//	chopperbench [-runs N] [-short] [-parallel N] [-out file]
//	             [-compare BENCH_10.json] [-tolerance 10%] [-strict-time]
//	             [-cpuprofile out.pprof] [-memprofile out.pprof]
//
// Without -compare it measures and (with -out) writes a fresh baseline.
// With -compare it measures and fails (exit 1) when:
//
//   - a kernel's allocs/op regresses beyond the tolerance vs the baseline
//     (allocation counts are machine-independent, so this gate is exact);
//   - a kernel's allocs/op no longer holds the >=30% reduction vs the
//     recorded pre-optimization seed numbers;
//   - an arena-gated kernel's bytes/op no longer holds the >=50% reduction
//     vs the compiled-in boxed pre-arena numbers (prevKernels, the BENCH_5
//     row-at-a-time data path) — the columnar-layout floor;
//   - peak RSS exceeds the baseline's by more than max(tolerance, 25%)
//     when the run shapes match (same -short setting);
//   - ns/op or sweep wall time regress beyond tolerance, only under
//     -strict-time (machine-dependent, so the tight gate is opt-in; with
//     matching shapes the sweep always gates at a loose 50% guard);
//   - the end-to-end sweep speedup at -parallel workers vs sequential falls
//     below the floor for this machine's GOMAXPROCS: >= 2.0 with 4+ procs,
//     >= 1.3 with 2-3, not gated on a single-proc machine (run-level
//     parallelism cannot buy wall time there; the kernel gates still apply);
//   - the chopperd service bench dropped any request under concurrent load
//     (throughput and latency are machine-dependent and recorded for the
//     baseline; throughput gates only under -strict-time);
//   - a fleet saturation row dropped any request, or the 4-shard fleet's
//     throughput falls below the 1-shard multiple for this machine's
//     GOMAXPROCS: >= 3.0x with 8+ procs, >= 1.8x with 4-7, not gated below
//     (in-process shards cannot buy throughput without spare CPUs).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"chopper/internal/experiments"
	"chopper/internal/experiments/driver"
	"chopper/internal/profiling"
	"chopper/internal/rdd"
)

// KernelResult is one measured benchmark row.
type KernelResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// EndToEnd is the wall-clock measurement of the quick experiment sweep at
// one and at ParallelWidth driver workers.
type EndToEnd struct {
	SequentialSec float64 `json:"sequential_sec"`
	ParallelSec   float64 `json:"parallel_sec"`
	ParallelWidth int     `json:"parallel_width"`
	Speedup       float64 `json:"speedup"`
}

// Report is the chopperbench output schema (BENCH_10.json). Schema 2 added
// the chopperd service row; schema 3 switched the kernel rows to the
// columnar arena paths and added the prev_kernels column (the boxed
// pre-arena numbers backing the bytes/op floor); schema 4 added the fleet
// saturation rows (1/2/4 in-process shards behind the router).
type Report struct {
	Schema      int            `json:"schema"`
	GoMaxProcs  int            `json:"go_maxprocs"`
	Short       bool           `json:"short"`
	Kernels     []KernelResult `json:"kernels"`
	SeedKernels []KernelResult `json:"seed_kernels"`
	PrevKernels []KernelResult `json:"prev_kernels"`
	EndToEnd    EndToEnd       `json:"end_to_end"`
	Service     ServiceBench   `json:"service"`
	Fleet       []FleetBench   `json:"fleet"`
	PeakRSS     int64          `json:"peak_rss_bytes"`
}

// seedKernels are the kernel numbers measured at the pre-optimization seed
// commit on the reference machine (go test -bench, internal/rdd). They are
// the "before" column of the baseline and back the >=30%-alloc-reduction
// gate; allocation counts are machine-independent.
var seedKernels = []KernelResult{
	{Name: "PartitionPairsIntCombine", NsPerOp: 775417, AllocsPerOp: 8474, BytesPerOp: 175512},
	{Name: "PartitionPairsStringCombine", NsPerOp: 853107, AllocsPerOp: 8485, BytesPerOp: 174960},
	{Name: "PartitionPairsNoCombine", NsPerOp: 495464, AllocsPerOp: 525, BytesPerOp: 754816},
	{Name: "MergeReduceBlocksIntCombine", NsPerOp: 629404, AllocsPerOp: 8221, BytesPerOp: 184176},
	{Name: "MergeReduceBlocksStringCombine", NsPerOp: 669095, AllocsPerOp: 8221, BytesPerOp: 184176},
	{Name: "MergeReduceBlocksNoAgg", NsPerOp: 5545568, AllocsPerOp: 8212, BytesPerOp: 747976},
	{Name: "LogicalPairsBytes", NsPerOp: 413111, AllocsPerOp: 8192, BytesPerOp: 262144},
}

// seedGated lists the kernels whose allocs/op must stay >=30% below the
// seed numbers (the shuffle/combine data path).
var seedGated = map[string]bool{
	"PartitionPairsIntCombine":       true,
	"PartitionPairsStringCombine":    true,
	"MergeReduceBlocksIntCombine":    true,
	"MergeReduceBlocksStringCombine": true,
	"LogicalPairsBytes":              true,
}

// prevKernels are the kernel numbers of the last boxed row-at-a-time
// baseline (BENCH_5, the pre-arena data path) on the reference machine.
// They back the >=50% bytes/op reduction floor of the columnar arena
// layout. Allocated bytes per op are machine-independent, so the floor is
// compiled in rather than read from the comparison baseline: a future
// re-baseline cannot quietly relax it.
var prevKernels = []KernelResult{
	{Name: "PartitionPairsIntCombine", NsPerOp: 470934, AllocsPerOp: 1370, BytesPerOp: 354706},
	{Name: "PartitionPairsStringCombine", NsPerOp: 708233, AllocsPerOp: 1627, BytesPerOp: 477699},
	{Name: "PartitionPairsNoCombine", NsPerOp: 309617, AllocsPerOp: 67, BytesPerOp: 317441},
	{Name: "MergeReduceBlocksIntCombine", NsPerOp: 402216, AllocsPerOp: 1317, BytesPerOp: 393145},
	{Name: "MergeReduceBlocksStringCombine", NsPerOp: 631081, AllocsPerOp: 1573, BytesPerOp: 606138},
	{Name: "MergeReduceBlocksNoAgg", NsPerOp: 4995596, AllocsPerOp: 8197, BytesPerOp: 655475},
	{Name: "LogicalPairsBytes", NsPerOp: 98811, AllocsPerOp: 0, BytesPerOp: 0},
}

// arenaGated lists the kernels the columnar arena layout rewrote: their
// bytes/op must stay >=50% below the boxed prevKernels numbers. The
// no-agg concat and the sizing kernels are excluded (the first was
// already slice-dominated, the second allocation-free).
var arenaGated = map[string]bool{
	"PartitionPairsIntCombine":       true,
	"PartitionPairsStringCombine":    true,
	"PartitionPairsNoCombine":        true,
	"MergeReduceBlocksIntCombine":    true,
	"MergeReduceBlocksStringCombine": true,
}

type kernel struct {
	name string
	fn   func(b *testing.B)
}

// benchIntPairs / benchStringPairs / benchBlocks mirror the shapes of the
// internal/rdd package benchmarks so the harness gates the same code paths.
func benchIntPairs(n, keys int) []rdd.Row {
	rows := make([]rdd.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = rdd.Pair{K: i % keys, V: float64(i)}
	}
	return rows
}

func benchStringPairs(n, keys int) []rdd.Row {
	ks := make([]string, keys)
	for i := range ks {
		ks[i] = fmt.Sprintf("key-%04d", i)
	}
	rows := make([]rdd.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = rdd.Pair{K: ks[i%keys], V: float64(i)}
	}
	return rows
}

// benchColBlocks builds per-map-task arena views, the shape the reduce
// side reads through shuffle.Manager.ReduceInput.
func benchColBlocks(rows []rdd.Row, maps int, agg *rdd.Aggregator) []*rdd.ColBlock {
	p := rdd.NewHashPartitioner(1)
	blocks := make([]*rdd.ColBlock, maps)
	for m := 0; m < maps; m++ {
		lo, hi := m*len(rows)/maps, (m+1)*len(rows)/maps
		cols, boxed, err := rdd.PartitionPairsCol(rows[lo:hi], p, agg)
		if err != nil {
			panic(err)
		}
		if cols == nil {
			blocks[m] = &rdd.ColBlock{Kind: rdd.ColNone, Pairs: boxed[0]}
		} else {
			blk := cols.Bucket(0)
			blocks[m] = &blk
		}
	}
	return blocks
}

func kernels() []kernel {
	// The partition and merge rows keep their historical names but measure
	// the columnar arena paths — the code the engine actually runs; the
	// boxed PartitionPairs/MergeReduceBlocks fallback stays pinned by the
	// engine-vs-oracle fuzz target, not by this harness.
	partition := func(rows []rdd.Row, agg *rdd.Aggregator) func(b *testing.B) {
		p := rdd.NewHashPartitioner(64)
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cols, _, err := rdd.PartitionPairsCol(rows, p, agg)
				if err != nil {
					b.Fatal(err)
				}
				if cols == nil {
					b.Fatal("bench rows fell back to the boxed path")
				}
			}
		}
	}
	merge := func(blocks []*rdd.ColBlock, agg *rdd.Aggregator) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rdd.MergeReduceCol(blocks, agg)
			}
		}
	}
	intRows := benchIntPairs(8192, 512)
	strRows := benchStringPairs(8192, 512)
	sizedBk, err := rdd.PartitionPairs(intRows, rdd.NewHashPartitioner(1), nil)
	if err != nil {
		panic(err)
	}
	sizedCols, _, err := rdd.PartitionPairsCol(intRows, rdd.NewHashPartitioner(1), nil)
	if err != nil || sizedCols == nil {
		panic(fmt.Sprintf("columnar sizing fixture fell back: %v", err))
	}
	return []kernel{
		{"PartitionPairsIntCombine", partition(intRows, rdd.SumAggregator())},
		{"PartitionPairsStringCombine", partition(strRows, rdd.SumAggregator())},
		{"PartitionPairsNoCombine", partition(intRows, nil)},
		{"MergeReduceBlocksIntCombine", merge(benchColBlocks(intRows, 16, rdd.SumAggregator()), rdd.SumAggregator())},
		{"MergeReduceBlocksStringCombine", merge(benchColBlocks(strRows, 16, rdd.SumAggregator()), rdd.SumAggregator())},
		{"MergeReduceBlocksNoAgg", merge(benchColBlocks(intRows, 16, nil), nil)},
		{"LogicalPairsBytes", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rdd.LogicalPairsBytes(sizedBk[0], 1000.0)
			}
		}},
		{"ColBucketLogicalBytes", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sizedCols.LogicalBytes(0, 1000.0)
			}
		}},
	}
}

// measureKernels runs every kernel `runs` times and keeps the best ns/op
// (allocation counts are stable across repetitions).
func measureKernels(runs int) []KernelResult {
	var out []KernelResult
	for _, k := range kernels() {
		best := KernelResult{Name: k.name}
		for r := 0; r < runs; r++ {
			res := testing.Benchmark(k.fn)
			cur := KernelResult{
				Name:        k.name,
				NsPerOp:     float64(res.NsPerOp()),
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
			}
			if r == 0 || cur.NsPerOp < best.NsPerOp {
				best = cur
			}
		}
		fmt.Printf("  %-32s %12.0f ns/op %8d B/op %6d allocs/op\n",
			best.Name, best.NsPerOp, best.BytesPerOp, best.AllocsPerOp)
		out = append(out, best)
	}
	return out
}

// sweep runs the quick experiment suite once at the given driver width and
// returns its wall time. The full (non-short) sweep adds a train-and-compare
// pipeline on top of the motivation grid.
func sweep(parallel int, short bool) (float64, error) {
	driver.SetParallelism(parallel)
	defer driver.SetParallelism(0)
	start := time.Now()
	if _, err := experiments.RunMotivation(true, nil); err != nil {
		return 0, err
	}
	if !short {
		if _, err := experiments.RunEvaluation(true); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Seconds(), nil
}

func measureEndToEnd(parallel int, short bool) (EndToEnd, error) {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	seq, err := sweep(1, short)
	if err != nil {
		return EndToEnd{}, err
	}
	par, err := sweep(parallel, short)
	if err != nil {
		return EndToEnd{}, err
	}
	e := EndToEnd{SequentialSec: seq, ParallelSec: par, ParallelWidth: parallel}
	if par > 0 {
		e.Speedup = seq / par
	}
	fmt.Printf("  end-to-end sweep: sequential %.2fs, parallel(%d) %.2fs, speedup %.2fx\n",
		seq, parallel, par, e.Speedup)
	return e, nil
}

func peakRSSBytes() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	// Maxrss is KiB on Linux.
	return ru.Maxrss << 10
}

// parseTolerance accepts "10%" or "0.10".
func parseTolerance(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if t, ok := strings.CutSuffix(s, "%"); ok {
		v, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
		if err != nil {
			return 0, fmt.Errorf("chopperbench: bad tolerance %q", s)
		}
		return v / 100, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("chopperbench: bad tolerance %q", s)
	}
	return v, nil
}

// speedupFloor returns the required end-to-end speedup for a machine with
// procs schedulable CPUs, and whether the gate applies at all.
func speedupFloor(procs int) (float64, bool) {
	switch {
	case procs >= 4:
		return 2.0, true
	case procs >= 2:
		return 1.3, true
	default:
		return 0, false
	}
}

// compareReports gates cur against base; returns human-readable violations.
func compareReports(cur, base Report, tol float64, strictTime bool) []string {
	var violations []string
	curBy := map[string]KernelResult{}
	for _, k := range cur.Kernels {
		curBy[k.Name] = k
	}
	seedBy := map[string]KernelResult{}
	for _, k := range base.SeedKernels {
		seedBy[k.Name] = k
	}
	for _, b := range base.Kernels {
		c, ok := curBy[b.Name]
		if !ok {
			violations = append(violations, fmt.Sprintf("kernel %s: in baseline but not measured", b.Name))
			continue
		}
		if limit := float64(b.AllocsPerOp)*(1+tol) + 0.5; float64(c.AllocsPerOp) > limit {
			violations = append(violations, fmt.Sprintf(
				"kernel %s: allocs/op %d exceeds baseline %d by more than %.0f%%",
				b.Name, c.AllocsPerOp, b.AllocsPerOp, tol*100))
		}
		if strictTime && c.NsPerOp > b.NsPerOp*(1+tol) {
			violations = append(violations, fmt.Sprintf(
				"kernel %s: ns/op %.0f exceeds baseline %.0f by more than %.0f%% (-strict-time)",
				b.Name, c.NsPerOp, b.NsPerOp, tol*100))
		}
		if s, ok := seedBy[b.Name]; ok && seedGated[b.Name] {
			if float64(c.AllocsPerOp) > 0.7*float64(s.AllocsPerOp) {
				violations = append(violations, fmt.Sprintf(
					"kernel %s: allocs/op %d no longer >=30%% below the seed's %d",
					b.Name, c.AllocsPerOp, s.AllocsPerOp))
			}
		}
	}
	// Columnar-layout floor: arena-gated kernels hold a >=50% bytes/op
	// reduction against the compiled-in boxed pre-arena numbers, so the
	// gate survives any re-baseline.
	for _, pk := range prevKernels {
		if !arenaGated[pk.Name] {
			continue
		}
		c, ok := curBy[pk.Name]
		if !ok {
			violations = append(violations, fmt.Sprintf(
				"kernel %s: arena-gated but not measured", pk.Name))
			continue
		}
		if float64(c.BytesPerOp) > 0.5*float64(pk.BytesPerOp) {
			violations = append(violations, fmt.Sprintf(
				"kernel %s: bytes/op %d no longer >=50%% below the boxed pre-arena %d",
				pk.Name, c.BytesPerOp, pk.BytesPerOp))
		}
	}
	if cur.Short == base.Short {
		// Same run shape: memory and wall time are comparable. RSS gates
		// at a loosened tolerance (the process peak includes the Go
		// runtime's sizing choices); the sweep always gates at a loose 50%
		// guard and tightens to the tolerance under -strict-time.
		if base.PeakRSS > 0 {
			rssTol := tol
			if rssTol < 0.25 {
				rssTol = 0.25
			}
			if float64(cur.PeakRSS) > float64(base.PeakRSS)*(1+rssTol) {
				violations = append(violations, fmt.Sprintf(
					"peak RSS %.1f MB exceeds baseline %.1f MB by more than %.0f%%",
					float64(cur.PeakRSS)/1e6, float64(base.PeakRSS)/1e6, rssTol*100))
			}
		}
		sweepTol := 0.5
		if strictTime {
			sweepTol = tol
		}
		if base.EndToEnd.ParallelSec > 0 && cur.EndToEnd.ParallelSec > base.EndToEnd.ParallelSec*(1+sweepTol) {
			violations = append(violations, fmt.Sprintf(
				"end-to-end sweep %.2fs exceeds baseline %.2fs by more than %.0f%%",
				cur.EndToEnd.ParallelSec, base.EndToEnd.ParallelSec, sweepTol*100))
		}
	}
	if floor, gated := speedupFloor(cur.GoMaxProcs); gated {
		if cur.EndToEnd.Speedup < floor {
			violations = append(violations, fmt.Sprintf(
				"end-to-end speedup %.2fx below the %.1fx floor for GOMAXPROCS=%d",
				cur.EndToEnd.Speedup, floor, cur.GoMaxProcs))
		}
	} else {
		fmt.Printf("  speedup gate skipped: GOMAXPROCS=%d leaves no room for run-level parallelism\n", cur.GoMaxProcs)
	}
	violations = append(violations, compareService(cur.Service, base.Service, tol, strictTime)...)
	violations = append(violations, compareFleet(cur.Fleet, base.Fleet, tol, strictTime, cur.GoMaxProcs)...)
	return violations
}

func run() error {
	runs := flag.Int("runs", 3, "benchmark repetitions per kernel (best kept)")
	short := flag.Bool("short", false, "small sweep and single repetitions (the ci.sh gate)")
	parallel := flag.Int("parallel", 0, "driver width of the parallel sweep (0 = GOMAXPROCS)")
	out := flag.String("out", "", "write the measured report as JSON to this file")
	compareTo := flag.String("compare", "", "baseline JSON to gate against")
	tolerance := flag.String("tolerance", "10%", "allowed regression (e.g. 10% or 0.10)")
	strictTime := flag.Bool("strict-time", false, "also gate ns/op (machine-dependent; off by default)")
	benchtime := flag.String("benchtime", "", "testing benchtime override (e.g. 100x, 0.2s)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	if *short && !flagPassed("runs") {
		*runs = 1
	}
	if *benchtime == "" && *short {
		*benchtime = "50x"
	}
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			return err
		}
	}

	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		return err
	}
	defer stopCPU()

	tol, err := parseTolerance(*tolerance)
	if err != nil {
		return err
	}

	fmt.Println("chopperbench: kernels")
	rep := Report{
		Schema:      4,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Short:       *short,
		Kernels:     measureKernels(*runs),
		SeedKernels: seedKernels,
		PrevKernels: prevKernels,
	}
	fmt.Println("chopperbench: end-to-end sweep")
	if rep.EndToEnd, err = measureEndToEnd(*parallel, *short); err != nil {
		return err
	}
	fmt.Println("chopperbench: chopperd service")
	if rep.Service, err = measureService(*short); err != nil {
		return err
	}
	fmt.Println("chopperbench: fleet saturation (1/2/4 shards)")
	if rep.Fleet, err = measureFleet(*short); err != nil {
		return err
	}
	rep.PeakRSS = peakRSSBytes()
	fmt.Printf("  peak RSS: %.1f MB\n", float64(rep.PeakRSS)/1e6)

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("chopperbench: wrote %s\n", *out)
	}

	if *compareTo != "" {
		data, err := os.ReadFile(*compareTo)
		if err != nil {
			return err
		}
		var base Report
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("chopperbench: parse %s: %w", *compareTo, err)
		}
		if violations := compareReports(rep, base, tol, *strictTime); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "chopperbench: REGRESSION:", v)
			}
			return fmt.Errorf("chopperbench: %d regression(s) vs %s", len(violations), *compareTo)
		}
		fmt.Printf("chopperbench: no regressions vs %s (tolerance %.0f%%)\n", *compareTo, tol*100)
	}

	if err := profiling.WriteHeap(*memprofile); err != nil {
		return err
	}
	return nil
}

func flagPassed(name string) bool {
	passed := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			passed = true
		}
	})
	return passed
}

func main() {
	testing.Init()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
