package main

// The chopperd service benchmark: an in-process daemon (in-memory store, so
// the numbers measure the serving stack, not fsync) driven by the
// closed-loop load generator. Recorded in the committed baseline
// (BENCH_10.json) and gated on zero dropped requests; latency/throughput are
// machine-dependent and gate only under -strict-time.

import (
	"context"
	"fmt"
	"time"

	"chopper/api"
	"chopper/client"
	"chopper/internal/loadgen"
	"chopper/internal/service"
)

// ServiceBench is the measured serving-stack row of the report.
type ServiceBench struct {
	Requests      int     `json:"requests"`
	Concurrency   int     `json:"concurrency"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MaxMs         float64 `json:"max_ms"`
	Retries429    int     `json:"retries_429"`
	Dropped       int     `json:"dropped"`
	TrainRuns     int     `json:"train_runs"`
}

// measureService boots a daemon on an ephemeral port, trains the kmeans
// profile once, then runs the mixed recommend/submit closed loop.
func measureService(short bool) (ServiceBench, error) {
	requests, concurrency := 256, 32
	if short {
		requests, concurrency = 96, 16
	}
	sb := ServiceBench{Requests: requests, Concurrency: concurrency}

	srv, err := service.New(service.Config{})
	if err != nil {
		return sb, err
	}
	ln, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return sb, err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	cl := client.New(base)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	noRange := false
	tr, err := cl.Train(ctx, api.TrainRequest{
		Workload:      "kmeans",
		Shrink:        24,
		SizeFractions: []float64{0.5, 1.0},
		Partitions:    []int{150, 300},
		Range:         &noRange,
	})
	if err != nil {
		return sb, fmt.Errorf("service bench train: %w", err)
	}
	sb.TrainRuns = tr.Runs

	res, err := loadgen.Run(ctx, loadgen.Config{
		Base:           base,
		Concurrency:    concurrency,
		Requests:       requests,
		Workload:       "kmeans",
		Shrink:         24,
		SubmitFraction: 0.25,
		NoRecord:       true,
	})
	if err != nil {
		return sb, fmt.Errorf("service bench load: %w", err)
	}
	sb.ThroughputRPS = res.Throughput()
	sb.P50Ms = res.Hist.Quantile(0.50) * 1e3
	sb.P99Ms = res.Hist.Quantile(0.99) * 1e3
	sb.MaxMs = res.Hist.Max() * 1e3
	sb.Retries429 = res.Retries429
	sb.Dropped = res.Dropped

	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		return sb, fmt.Errorf("service bench shutdown: %w", err)
	}
	if err := <-done; err != nil {
		return sb, fmt.Errorf("service bench serve: %w", err)
	}
	fmt.Printf("  chopperd: %s\n", res)
	return sb, nil
}

// compareService gates the service row: dropped requests fail always;
// throughput regressions fail only under -strict-time.
func compareService(cur, base ServiceBench, tol float64, strictTime bool) []string {
	var violations []string
	if cur.Requests > 0 && cur.Dropped > 0 {
		violations = append(violations, fmt.Sprintf(
			"service: %d of %d requests dropped under %d-way load (want 0)",
			cur.Dropped, cur.Requests, cur.Concurrency))
	}
	if strictTime && base.ThroughputRPS > 0 && cur.ThroughputRPS < base.ThroughputRPS*(1-tol) {
		violations = append(violations, fmt.Sprintf(
			"service: throughput %.1f req/s below baseline %.1f by more than %.0f%% (-strict-time)",
			cur.ThroughputRPS, base.ThroughputRPS, tol*100))
	}
	return violations
}
