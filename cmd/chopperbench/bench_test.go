package main

import (
	"strings"
	"testing"

	"chopper/internal/rdd"
)

// TestPlantedPerPairCopyTripsBytesFloor is the deliberate-break check
// behind the arena bytes/op floor: re-introducing a per-pair copy on the
// reduce side (materializing every arena view to boxed pairs before the
// merge — exactly what the columnar layout removed) must trip the >=50%
// floor against the compiled-in pre-arena numbers, while the real
// columnar path clears it.
func TestPlantedPerPairCopyTripsBytesFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("measures allocation profiles; skipped under -short")
	}
	agg := rdd.SumAggregator()
	blocks := benchColBlocks(benchIntPairs(8192, 512), 16, agg)

	measure := func(fn func()) int64 {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
		return res.AllocedBytesPerOp()
	}
	colBytes := measure(func() { rdd.MergeReduceCol(blocks, agg) })
	plantedBytes := measure(func() {
		// The per-pair copy the arena layout exists to avoid: box every
		// (key, value) back into a rdd.Pair, then merge row-at-a-time.
		pairs := make([][]rdd.Pair, len(blocks))
		for i, blk := range blocks {
			pairs[i] = blk.AppendPairs(nil)
		}
		rdd.MergeReduceBlocks(pairs, agg)
	})

	gate := func(bytesPerOp int64) []string {
		rep := Report{
			Schema:     4,
			GoMaxProcs: 1, // sidestep the unrelated sweep-speedup gate
			Kernels: []KernelResult{{
				Name:       "MergeReduceBlocksIntCombine",
				BytesPerOp: bytesPerOp,
			}},
		}
		var floorHits []string
		for _, v := range compareReports(rep, rep, 0.10, false) {
			if strings.Contains(v, "MergeReduceBlocksIntCombine") && strings.Contains(v, "50%") {
				floorHits = append(floorHits, v)
			}
		}
		return floorHits
	}

	if hits := gate(colBytes); len(hits) != 0 {
		t.Fatalf("columnar merge (%d B/op) must clear the floor, got: %v", colBytes, hits)
	}
	if hits := gate(plantedBytes); len(hits) == 0 {
		t.Fatalf("planted per-pair copy (%d B/op) did not trip the bytes/op floor", plantedBytes)
	}
}
