package main

// The fleet saturation benchmark (Awan-style resource rows): an in-process
// fleet of 1, 2, and 4 shard primaries behind the fleet router, driven by
// the closed-loop load generator across all four builtin workloads, with
// throughput, latency, peak RSS, and GC pause time recorded per fleet size.
// Gated on zero dropped requests at every size; the 4-vs-1 shard scaling
// floor applies only where GOMAXPROCS leaves room for shard parallelism.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"time"

	"chopper/api"
	"chopper/client"
	"chopper/internal/fleet"
	"chopper/internal/loadgen"
	"chopper/internal/service"
)

// FleetBench is one fleet-size row of the saturation table.
type FleetBench struct {
	Shards        int     `json:"shards"`
	Requests      int     `json:"requests"`
	Concurrency   int     `json:"concurrency"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	Dropped       int     `json:"dropped"`
	// PeakRSSBytes is the process peak after the row (monotonic across
	// rows — the deltas, not the absolutes, carry the per-size signal).
	PeakRSSBytes int64 `json:"peak_rss_bytes"`
	// GCPauseMs and NumGC are the garbage-collector cost during the row.
	GCPauseMs float64 `json:"gc_pause_ms"`
	NumGC     uint32  `json:"num_gc"`
}

// fleetWorkloads spreads load across every builtin so each shard of a
// 4-shard fleet owns traffic (the ring places all four on distinct shards
// at n=4; see internal/fleet).
var fleetWorkloads = []string{"kmeans", "pca", "sql", "pagerank"}

// measureFleet runs the saturation row at 1, 2, and 4 shards.
func measureFleet(short bool) ([]FleetBench, error) {
	var rows []FleetBench
	for _, n := range []int{1, 2, 4} {
		row, err := measureFleetRow(n, short)
		if err != nil {
			return nil, fmt.Errorf("fleet bench at %d shard(s): %w", n, err)
		}
		fmt.Printf("  %d shard(s): %7.1f req/s, p50 %.1fms p99 %.1fms, %d dropped, GC %.1fms/%d cycles\n",
			row.Shards, row.ThroughputRPS, row.P50Ms, row.P99Ms, row.Dropped, row.GCPauseMs, row.NumGC)
		rows = append(rows, row)
	}
	return rows, nil
}

// measureFleetRow boots shards in-memory primaries (Workers 2 each, so the
// worker-pool budget grows with the fleet the way a real deployment's
// would), fronts them with the router, trains every builtin through it, and
// measures a recommend-only closed loop across all workloads.
func measureFleetRow(shards int, short bool) (FleetBench, error) {
	requests, concurrency := 1024, 32
	if short {
		requests, concurrency = 256, 16
	}
	fb := FleetBench{Shards: shards, Requests: requests, Concurrency: concurrency}

	var topo fleet.Topology
	servers := make([]*service.Server, shards)
	serveDone := make([]chan error, shards)
	for i := 0; i < shards; i++ {
		srv, err := service.New(service.Config{Role: "primary", ShardID: i, ShardCount: shards, Workers: 2})
		if err != nil {
			return fb, err
		}
		ln, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return fb, err
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		servers[i], serveDone[i] = srv, done
		topo.Shards = append(topo.Shards, fleet.Shard{Primary: "http://" + ln.Addr().String()})
	}
	router, err := fleet.NewRouter(fleet.RouterConfig{Topology: topo, ProbeInterval: 100 * time.Millisecond})
	if err != nil {
		return fb, err
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fb, err
	}
	stop := make(chan struct{})
	routerDone := make(chan struct{})
	go func() {
		defer close(routerDone)
		router.Run(stop)
	}()
	httpSrv := &http.Server{Handler: router.Handler()}
	go func() { _ = httpSrv.Serve(rln) }() // ends via Close below
	base := "http://" + rln.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	cl := client.New(base)
	noRange := false
	for _, w := range fleetWorkloads {
		if _, err := cl.Train(ctx, api.TrainRequest{
			Workload:      w,
			Shrink:        24,
			SizeFractions: []float64{1.0},
			Partitions:    []int{150},
			Range:         &noRange,
		}); err != nil {
			return fb, fmt.Errorf("train %s: %w", w, err)
		}
	}

	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	res, err := loadgen.Run(ctx, loadgen.Config{
		Targets:        []string{base},
		Workloads:      fleetWorkloads,
		ShardCount:     shards,
		Concurrency:    concurrency,
		Requests:       requests,
		SubmitFraction: 0, // recommend-only: the saturation row measures read fan-out
	})
	runtime.ReadMemStats(&m1)
	if err != nil {
		return fb, fmt.Errorf("fleet load: %w", err)
	}
	fb.ThroughputRPS = res.Throughput()
	fb.P50Ms = res.Hist.Quantile(0.50) * 1e3
	fb.P99Ms = res.Hist.Quantile(0.99) * 1e3
	fb.Dropped = res.Dropped
	fb.GCPauseMs = float64(m1.PauseTotalNs-m0.PauseTotalNs) / 1e6
	fb.NumGC = m1.NumGC - m0.NumGC
	fb.PeakRSSBytes = peakRSSBytes()

	_ = httpSrv.Close()
	close(stop)
	<-routerDone
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	for i, srv := range servers {
		if err := srv.Shutdown(sctx); err != nil {
			return fb, fmt.Errorf("shard %d shutdown: %w", i, err)
		}
		if err := <-serveDone[i]; err != nil {
			return fb, fmt.Errorf("shard %d serve: %w", i, err)
		}
	}
	return fb, nil
}

// fleetScalingFloor returns the required 4-shard-vs-1-shard throughput
// ratio for a machine with procs schedulable CPUs, and whether the gate
// applies: shards in this harness are in-process, so with too few CPUs the
// fleet cannot buy throughput and the gate would only measure scheduler
// noise.
func fleetScalingFloor(procs int) (float64, bool) {
	switch {
	case procs >= 8:
		return 3.0, true
	case procs >= 4:
		return 1.8, true
	default:
		return 0, false
	}
}

// compareFleet gates the saturation rows: dropped requests fail always; the
// 4-vs-1 scaling floor applies per fleetScalingFloor; throughput vs the
// baseline gates only under -strict-time.
func compareFleet(cur, base []FleetBench, tol float64, strictTime bool, procs int) []string {
	var violations []string
	byShards := map[int]FleetBench{}
	for _, row := range cur {
		byShards[row.Shards] = row
		if row.Requests > 0 && row.Dropped > 0 {
			violations = append(violations, fmt.Sprintf(
				"fleet: %d of %d requests dropped at %d shard(s) (want 0)",
				row.Dropped, row.Requests, row.Shards))
		}
	}
	if floor, gated := fleetScalingFloor(procs); gated {
		one, four := byShards[1], byShards[4]
		if one.ThroughputRPS > 0 && four.ThroughputRPS < floor*one.ThroughputRPS {
			violations = append(violations, fmt.Sprintf(
				"fleet: 4-shard throughput %.1f req/s below %.1fx the 1-shard %.1f req/s (GOMAXPROCS=%d floor)",
				four.ThroughputRPS, floor, one.ThroughputRPS, procs))
		}
	} else if len(cur) > 0 {
		fmt.Printf("  fleet scaling gate skipped: GOMAXPROCS=%d leaves no room for shard parallelism\n", procs)
	}
	if strictTime {
		for _, b := range base {
			c, ok := byShards[b.Shards]
			if !ok || b.ThroughputRPS <= 0 {
				continue
			}
			if c.ThroughputRPS < b.ThroughputRPS*(1-tol) {
				violations = append(violations, fmt.Sprintf(
					"fleet: %d-shard throughput %.1f req/s below baseline %.1f by more than %.0f%% (-strict-time)",
					b.Shards, c.ThroughputRPS, b.ThroughputRPS, tol*100))
			}
		}
	}
	return violations
}
