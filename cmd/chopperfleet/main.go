// Command chopperfleet is the fleet front for a sharded, replicated
// chopperd deployment (internal/fleet, DESIGN.md §10): an HTTP router that
// fans writes to each workload's owning shard primary and reads to any
// caught-up replica, with per-backend health probing, a merged
// /v1/workloads view, aggregated /metrics, and a fleet /healthz.
//
// Router mode fronts an existing fleet described by a JSON topology file
// ({"shards":[{"primary":"http://...","replicas":["http://..."]}]}):
//
//	chopperfleet -addr 127.0.0.1:7070 -topology fleet.json
//
// Spawn mode additionally boots the fleet itself from a chopperd binary —
// one primary per shard plus the requested replicas per shard, each with
// its own store under -store-dir — then fronts it, and drains every daemon
// on SIGINT/SIGTERM:
//
//	chopperfleet -addr 127.0.0.1:7070 -chopperd ./chopperd -shards 2 -replicas 1 -store-dir ./fleet
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"chopper/internal/fleet"
	"chopper/internal/fleetproc"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "router listen address (use :0 for an ephemeral port)")
	topoPath := flag.String("topology", "", "JSON topology file of an existing fleet (router mode)")
	binary := flag.String("chopperd", "", "chopperd binary to spawn the fleet from (spawn mode)")
	shards := flag.Int("shards", 2, "shard count to spawn (spawn mode)")
	replicas := flag.Int("replicas", 1, "replicas per shard to spawn (spawn mode)")
	storeDir := flag.String("store-dir", "", "directory for spawned daemon stores (spawn mode; default: a temp dir)")
	probe := flag.Duration("probe", 250*time.Millisecond, "backend health-probe interval")
	flag.Parse()

	if err := run(*addr, *topoPath, *binary, *shards, *replicas, *storeDir, *probe); err != nil {
		fmt.Fprintf(os.Stderr, "chopperfleet: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, topoPath, binary string, shards, replicas int, storeDir string, probe time.Duration) error {
	if (topoPath == "") == (binary == "") {
		return fmt.Errorf("pass exactly one of -topology (router mode) or -chopperd (spawn mode)")
	}
	ctx := context.Background()

	var topo fleet.Topology
	var daemons []*fleetproc.Daemon
	if topoPath != "" {
		data, err := os.ReadFile(topoPath)
		if err != nil {
			return err
		}
		topo, err = fleet.ParseTopology(data)
		if err != nil {
			return err
		}
	} else {
		var err error
		topo, daemons, err = spawnFleet(ctx, binary, shards, replicas, storeDir)
		if err != nil {
			drainAll(daemons)
			return err
		}
	}

	router, err := fleet.NewRouter(fleet.RouterConfig{Topology: topo, ProbeInterval: probe})
	if err != nil {
		drainAll(daemons)
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		drainAll(daemons)
		return fmt.Errorf("listen %s: %w", addr, err)
	}
	for i, sh := range topo.Shards {
		fmt.Printf("chopperfleet: shard %d: primary %s, %d replica(s)\n", i, sh.Primary, len(sh.Replicas))
	}
	fmt.Printf("chopperfleet: listening on http://%s\n", ln.Addr())

	stop := make(chan struct{})
	routerDone := make(chan struct{})
	go func() {
		defer close(routerDone)
		router.Run(stop)
	}()
	srv := &http.Server{Handler: router.Handler()}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Printf("chopperfleet: %v received, shutting down\n", sig)
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()

	err = srv.Serve(ln)
	if err == http.ErrServerClosed {
		err = nil
	}
	close(stop)
	<-routerDone
	drainAll(daemons)
	if err == nil {
		fmt.Println("chopperfleet: bye")
	}
	return err
}

// spawnFleet boots one primary per shard plus replicas, each on an
// ephemeral port with its own store, and returns the resulting topology.
// Replicas are started after their primary so they can be pointed at it.
func spawnFleet(ctx context.Context, binary string, shards, replicas int, storeDir string) (fleet.Topology, []*fleetproc.Daemon, error) {
	if shards <= 0 {
		return fleet.Topology{}, nil, fmt.Errorf("-shards must be positive, got %d", shards)
	}
	if storeDir == "" {
		dir, err := os.MkdirTemp("", "chopperfleet-")
		if err != nil {
			return fleet.Topology{}, nil, err
		}
		storeDir = dir
	} else if err := os.MkdirAll(storeDir, 0o755); err != nil {
		return fleet.Topology{}, nil, err
	}
	var topo fleet.Topology
	var daemons []*fleetproc.Daemon
	for i := 0; i < shards; i++ {
		p, err := fleetproc.Start(ctx, binary,
			"-addr", "127.0.0.1:0",
			"-store", filepath.Join(storeDir, fmt.Sprintf("shard%d.db", i)),
			"-role", "primary", "-shard-id", strconv.Itoa(i), "-shard-count", strconv.Itoa(shards))
		if err != nil {
			return topo, daemons, fmt.Errorf("spawn shard %d primary: %w", i, err)
		}
		daemons = append(daemons, p)
		sh := fleet.Shard{Primary: p.Addr}
		for j := 0; j < replicas; j++ {
			r, err := fleetproc.Start(ctx, binary,
				"-addr", "127.0.0.1:0",
				"-store", filepath.Join(storeDir, fmt.Sprintf("shard%d-replica%d.db", i, j)),
				"-role", "replica", "-shard-id", strconv.Itoa(i), "-shard-count", strconv.Itoa(shards),
				"-primary", p.Addr)
			if err != nil {
				return topo, daemons, fmt.Errorf("spawn shard %d replica %d: %w", i, j, err)
			}
			daemons = append(daemons, r)
			sh.Replicas = append(sh.Replicas, r.Addr)
		}
		topo.Shards = append(topo.Shards, sh)
	}
	return topo, daemons, nil
}

// drainAll SIGTERMs every spawned daemon, replicas and primaries alike,
// reporting but not failing on individual drain errors.
func drainAll(daemons []*fleetproc.Daemon) {
	// Reverse order: replicas (started after their primary) drain first, so
	// no replica is left pulling from a gone primary.
	for i := len(daemons) - 1; i >= 0; i-- {
		if err := daemons[i].Drain(); err != nil {
			fmt.Fprintf(os.Stderr, "chopperfleet: drain %s: %v\n", daemons[i].Addr, err)
		}
	}
}
